#include "gamma/scheduler.h"

namespace gammadb::db {

void ChargeOperatorPhase(sim::Machine& machine, int num_producers,
                         int num_consumers, uint64_t split_table_bytes) {
  const sim::CostModel& cost = machine.cost();
  const int st_packets = cost.SplitTablePackets(split_table_bytes);
  // Two control messages (start, done) per operator process, plus one
  // extra scheduler packet per additional split-table piece per producer.
  const int64_t messages =
      2LL * (num_producers + num_consumers) +
      static_cast<int64_t>(num_producers) * std::max(0, st_packets - 1);
  machine.ChargeScheduler(
      static_cast<double>(messages) * cost.sched_control_message_seconds,
      messages);
}

void ChargeFilterDistribution(sim::Machine& machine, int num_join_sites,
                              int num_producers) {
  const sim::CostModel& cost = machine.cost();
  // Gather one slice packet from each join site, broadcast the assembled
  // packet to each producing site.
  const int64_t messages = num_join_sites + num_producers;
  machine.ChargeScheduler(
      static_cast<double>(messages) * cost.sched_control_message_seconds,
      messages);
}

}  // namespace gammadb::db
