#include "gamma/plan.h"

#include "common/logging.h"
#include "gamma/operators.h"
#include "gamma/planner.h"
#include "join/driver.h"

namespace gammadb::db {

struct Plan::Node {
  enum class Kind { kScan, kJoin, kAggregate };
  Kind kind;

  // kScan
  std::string relation;
  PredicateList predicate;
  std::vector<int> projection;

  // kJoin
  std::shared_ptr<const Node> inner;
  std::shared_ptr<const Node> outer;
  int inner_field = 0;
  int outer_field = 0;
  JoinOptions join_options;

  // kAggregate
  std::shared_ptr<const Node> input;
  int group_by_field = -1;
  AggFunction function = AggFunction::kCount;
  int value_field = 0;
};

Plan Plan::Scan(std::string relation, PredicateList predicate,
                std::vector<int> projection) {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kScan;
  node->relation = std::move(relation);
  node->predicate = std::move(predicate);
  node->projection = std::move(projection);
  return Plan(std::move(node));
}

Plan Plan::Join(Plan inner, Plan outer, int inner_field, int outer_field,
                JoinOptions options) {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kJoin;
  node->inner = std::move(inner.root_);
  node->outer = std::move(outer.root_);
  node->inner_field = inner_field;
  node->outer_field = outer_field;
  node->join_options = std::move(options);
  return Plan(std::move(node));
}

Plan Plan::Aggregate(Plan input, int group_by_field, AggFunction function,
                     int value_field) {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kAggregate;
  node->input = std::move(input.root_);
  node->group_by_field = group_by_field;
  node->function = function;
  node->value_field = value_field;
  return Plan(std::move(node));
}

struct PlanExecutor {
  sim::Machine& machine;
  Catalog& catalog;
  std::vector<PlanStep>* steps;
  std::vector<std::string> temporaries;
  int next_temp = 0;

  std::string TempName() {
    return "__plan_tmp_" + std::to_string(next_temp++);
  }

  void RecordStep(std::string description, double seconds,
                  const sim::Counters& counters) {
    steps->push_back(PlanStep{std::move(description), seconds, counters});
  }

  void DropIfTemporary(const std::string& name) {
    for (auto it = temporaries.begin(); it != temporaries.end(); ++it) {
      if (*it == name) {
        GAMMA_CHECK_OK(catalog.Drop(name));
        temporaries.erase(it);
        return;
      }
    }
  }

  void CleanupAll() {
    for (const std::string& name : temporaries) {
      GAMMA_CHECK_OK(catalog.Drop(name));
    }
    temporaries.clear();
  }

  /// Executes a node; returns the name of the relation holding its
  /// output. `sink_name` non-empty = store the output under that name.
  Result<std::string> Execute(const Plan::Node& node,
                              const std::string& sink_name) {
    switch (node.kind) {
      case Plan::Node::Kind::kScan: {
        if (node.predicate.empty() && node.projection.empty() &&
            sink_name.empty()) {
          // Pass-through: consumers scan the base relation directly
          // (the select executes inside their scan operators).
          GAMMA_RETURN_IF_ERROR(catalog.Get(node.relation).status());
          return node.relation;
        }
        SelectSpec spec;
        spec.input_relation = node.relation;
        spec.output_relation = sink_name.empty() ? TempName() : sink_name;
        spec.predicate = node.predicate;
        spec.projection = node.projection;
        GAMMA_ASSIGN_OR_RETURN(SelectOutput out,
                               ExecuteSelect(machine, catalog, spec));
        if (sink_name.empty()) temporaries.push_back(spec.output_relation);
        RecordStep("select " + node.relation,
                   out.metrics.response_seconds, out.metrics.counters);
        return spec.output_relation;
      }
      case Plan::Node::Kind::kJoin: {
        join::JoinSpec spec;
        // Predicate pushdown: a selection directly under a join runs
        // inline in the join's scan operators (as the paper's joinAselB
        // does), instead of materializing a temporary.
        const auto resolve_input =
            [&](const Plan::Node& child,
                PredicateList* pushed) -> Result<std::string> {
          if (child.kind == Plan::Node::Kind::kScan &&
              child.projection.empty()) {
            GAMMA_RETURN_IF_ERROR(catalog.Get(child.relation).status());
            *pushed = child.predicate;
            return child.relation;
          }
          return Execute(child, "");
        };
        GAMMA_ASSIGN_OR_RETURN(std::string inner_name,
                               resolve_input(*node.inner,
                                             &spec.inner_predicate));
        GAMMA_ASSIGN_OR_RETURN(std::string outer_name,
                               resolve_input(*node.outer,
                                             &spec.outer_predicate));
        spec.inner_relation = inner_name;
        spec.outer_relation = outer_name;
        spec.inner_field = node.inner_field;
        spec.outer_field = node.outer_field;
        spec.memory_ratio = node.join_options.memory_ratio;
        spec.use_bit_filters = node.join_options.bit_filters;
        spec.join_nodes = node.join_options.join_nodes;
        GAMMA_ASSIGN_OR_RETURN(StoredRelation * inner_rel,
                               catalog.Get(inner_name));
        if (!spec.inner_predicate.empty()) {
          // Exact selectivity (standing in for catalog statistics):
          // base memory and bucket count on the post-selection size.
          uint64_t selected = 0;
          for (const storage::Tuple& t : inner_rel->PeekAllTuples()) {
            if (EvalAll(spec.inner_predicate, inner_rel->schema(), t)) {
              ++selected;
            }
          }
          spec.estimated_inner_tuples = std::max<uint64_t>(1, selected);
        }
        if (node.join_options.algorithm.has_value()) {
          spec.algorithm = *node.join_options.algorithm;
        } else {
          // Section 5 rule, driven by real column statistics. This
          // executor's overflow resolution is total (docs/overflow.md),
          // so the default robust_overflow_available=true applies and
          // the sort-merge skew fallback stays retired.
          GAMMA_ASSIGN_OR_RETURN(ColumnStats stats,
                                 AnalyzeColumn(*inner_rel, node.inner_field));
          spec.algorithm =
              ChooseJoinAlgorithm(stats, node.join_options.memory_ratio);
        }
        spec.result_name = sink_name.empty() ? TempName() : sink_name;
        GAMMA_ASSIGN_OR_RETURN(join::JoinOutput out,
                               join::ExecuteJoin(machine, catalog, spec));
        if (sink_name.empty()) temporaries.push_back(spec.result_name);
        RecordStep("join " + inner_name + " x " + outer_name + " (" +
                       join::AlgorithmName(spec.algorithm) + ")",
                   out.metrics.response_seconds, out.metrics.counters);
        DropIfTemporary(inner_name);
        DropIfTemporary(outer_name);
        return spec.result_name;
      }
      case Plan::Node::Kind::kAggregate: {
        GAMMA_ASSIGN_OR_RETURN(std::string input_name,
                               Execute(*node.input, ""));
        AggregateSpec spec;
        spec.input_relation = input_name;
        spec.output_relation = sink_name.empty() ? TempName() : sink_name;
        spec.group_by_field = node.group_by_field;
        spec.function = node.function;
        spec.value_field = node.value_field;
        GAMMA_ASSIGN_OR_RETURN(AggregateOutput out,
                               ExecuteAggregate(machine, catalog, spec));
        if (sink_name.empty()) temporaries.push_back(spec.output_relation);
        RecordStep(std::string("aggregate ") + AggFunctionName(node.function) +
                       " over " + input_name,
                   out.metrics.response_seconds, out.metrics.counters);
        DropIfTemporary(input_name);
        return spec.output_relation;
      }
    }
    return Status::Internal("unhandled plan node");
  }
};

Result<PlanResult> ExecutePlan(sim::Machine& machine, Catalog& catalog,
                               const Plan& plan, std::string result_name) {
  if (result_name.empty()) {
    return Status::InvalidArgument("result_name must not be empty");
  }
  PlanResult result;
  PlanExecutor executor{machine, catalog, &result.steps, {}, 0};
  auto final_name = executor.Execute(plan.Root(), result_name);
  if (!final_name.ok()) {
    executor.CleanupAll();
    return final_name.status();
  }
  GAMMA_CHECK(executor.temporaries.empty())
      << "plan executor leaked a temporary relation";
  result.result_relation = *final_name;
  GAMMA_ASSIGN_OR_RETURN(StoredRelation * rel, catalog.Get(*final_name));
  result.result_tuples = rel->total_tuples();
  for (const PlanStep& step : result.steps) {
    result.total_seconds += step.seconds;
  }
  return result;
}

}  // namespace gammadb::db
