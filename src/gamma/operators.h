// Parallel relational operators besides join: selection with
// projection, executed on the processors with disks ("Selection and
// update operations execute only on the processors with attached disk
// drives", paper Section 2.1), and a parallel store that declusters the
// output like any other Gamma relation.
//
// These are the operators the paper's joinAselB / joinCselAselB queries
// compose with the join algorithms.
#ifndef GAMMA_GAMMA_OPERATORS_H_
#define GAMMA_GAMMA_OPERATORS_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "gamma/catalog.h"
#include "gamma/loader.h"
#include "gamma/predicate.h"
#include "sim/machine.h"

namespace gammadb::db {

struct SelectSpec {
  std::string input_relation;
  std::string output_relation;
  /// Conjunctive selection predicate (empty = all tuples).
  PredicateList predicate;
  /// Field indices to keep, in output order (empty = all fields).
  std::vector<int> projection;
  /// Declustering of the output relation.
  PartitionStrategy output_strategy = PartitionStrategy::kRoundRobin;
  /// Partitioning attribute for hashed/range output declustering,
  /// as an index into the OUTPUT schema.
  int output_partition_field = 0;
  uint64_t hash_seed = kDefaultHashSeed;
  /// Use the relation's B+ index (if one covers a predicate field) for
  /// the scan: key-range lookup + per-rid fetches (random I/O) instead
  /// of a sequential scan. Cheaper for selective predicates, far more
  /// expensive for broad ones — the classic unclustered-index tradeoff.
  bool use_index = true;
};

struct SelectOutput {
  std::string output_relation;
  size_t input_tuples = 0;   // tuples examined (fetched or scanned)
  size_t output_tuples = 0;
  bool used_index = false;
  sim::RunMetrics metrics;
};

/// Runs a parallel selection: every disk node scans its fragment,
/// applies the predicate and projection, and routes surviving tuples
/// through a split table to the store operators. Resets machine metrics
/// at the start; the returned metrics cover exactly this operation.
Result<SelectOutput> ExecuteSelect(sim::Machine& machine, Catalog& catalog,
                                   const SelectSpec& spec);

/// The output schema a SelectSpec produces for a given input schema.
Result<storage::Schema> ProjectedSchema(const storage::Schema& input,
                                        const std::vector<int>& projection);

}  // namespace gammadb::db

#endif  // GAMMA_GAMMA_OPERATORS_H_
