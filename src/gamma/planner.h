// The slice of Gamma's query optimizer the paper's conclusions define:
// column statistics and the join-algorithm choice rule of Section 5 —
// "for uniformly distributed join attribute values the parallel Hybrid
// algorithm appears to be the algorithm of choice ... In the case where
// the join attribute values of the inner relation are highly skewed and
// memory is limited, the optimizer should choose a non-hash-based
// algorithm such as sort-merge."
#ifndef GAMMA_GAMMA_PLANNER_H_
#define GAMMA_GAMMA_PLANNER_H_

#include <cstdint>

#include "common/status.h"
#include "gamma/catalog.h"
#include "join/spec.h"

namespace gammadb::db {

/// Catalog statistics for one int32 column (computed at plan time; like
/// real catalog statistics this costs no simulated time).
struct ColumnStats {
  size_t cardinality = 0;      // rows
  size_t distinct = 0;         // distinct values
  size_t max_duplicates = 0;   // frequency of the most common value
  int32_t min_value = 0;
  int32_t max_value = 0;

  double AverageDuplicates() const {
    return distinct == 0 ? 0.0
                         : static_cast<double>(cardinality) /
                               static_cast<double>(distinct);
  }

  /// "Highly skewed": the heaviest value is well above the average
  /// duplicate frequency AND heavy in absolute terms. Calibrated on the
  /// paper's NU inner column (3.3 average, 16 max — flagged) vs uniform
  /// low-cardinality columns like `ten` (max == average — not flagged).
  bool HighlySkewed() const {
    return max_duplicates >= 8 &&
           static_cast<double>(max_duplicates) > 2.5 * AverageDuplicates();
  }
};

/// Exact single-pass analysis of an int32 column.
Result<ColumnStats> AnalyzeColumn(const StoredRelation& relation, int field);

/// The Section 5 rule. `memory_ratio` is aggregate join memory over the
/// inner relation's size; "memory is limited" = less than ~1/3 (below
/// the Figure 5 regime where Hybrid's advantage has mostly eroded).
/// `adaptive_repartition_available` reflects whether the executor can
/// install run-time rebalance plans (docs/skew.md): an adaptive Hybrid
/// absorbs skew inside each bucket's sub-join (bucket builds fit in
/// memory, so the rebalance planner rarely has to defer to the
/// overflow protocol), which retires the conservative sort-merge
/// fallback the paper recommends for static executors.
/// `robust_overflow_available` reflects whether the executor's overflow
/// resolution is total (docs/overflow.md): bounded recursion with a
/// deterministic nested-loop degrade means a skewed build can no longer
/// fail or loop, only slow down — so the fallback likewise retires.
/// It defaults to true because this executor always has it; pass false
/// to model the paper's original executor, where an unresolvable
/// overflow was fatal.
join::Algorithm ChooseJoinAlgorithm(const ColumnStats& inner_join_column,
                                    double memory_ratio,
                                    bool adaptive_repartition_available =
                                        false,
                                    bool robust_overflow_available = true);

}  // namespace gammadb::db

#endif  // GAMMA_GAMMA_PLANNER_H_
