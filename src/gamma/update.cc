#include "gamma/update.h"

#include "common/logging.h"
#include "gamma/scheduler.h"

namespace gammadb::db {

namespace {

Status ValidateInt32Field(const storage::Schema& schema, int field,
                          const char* what) {
  if (field < 0 || static_cast<size_t>(field) >= schema.num_fields()) {
    return Status::InvalidArgument(std::string(what) + " out of range");
  }
  if (schema.field(static_cast<size_t>(field)).type !=
      storage::FieldType::kInt32) {
    return Status::InvalidArgument(std::string(what) + " must be int32");
  }
  return Status::OK();
}

/// Runs `touch` over every fragment at its disk node, one operator
/// phase, and reports rows touched + metrics.
template <typename TouchFn>
DmlOutput RunDmlPhase(sim::Machine& machine, StoredRelation* relation,
                      const char* label, const TouchFn& touch) {
  machine.ResetMetrics();
  const std::vector<int> disks = machine.DiskNodeIds();
  std::vector<size_t> touched(disks.size());
  machine.BeginPhase(label);
  ChargeOperatorPhase(machine, static_cast<int>(disks.size()), 0, 0);
  machine.RunOnNodes(disks, [&](sim::Node& n) {
    size_t di = 0;
    for (size_t i = 0; i < disks.size(); ++i) {
      if (disks[i] == n.id()) di = i;
    }
    touched[di] = touch(n, relation->fragment(di));
  });
  machine.EndPhase().IgnoreError();
  // In-place rewrites stale any B+ indices.
  relation->DropIndexes();
  DmlOutput output;
  for (size_t count : touched) output.rows_touched += count;
  output.metrics = machine.Metrics();
  return output;
}

}  // namespace

Result<DmlOutput> ExecuteUpdate(sim::Machine& machine, Catalog& catalog,
                                const UpdateSpec& spec) {
  GAMMA_ASSIGN_OR_RETURN(StoredRelation * relation,
                         catalog.Get(spec.relation));
  const storage::Schema& schema = relation->schema();
  if (spec.assignments.empty()) {
    return Status::InvalidArgument("update with no assignments");
  }
  for (const Predicate& p : spec.predicate) {
    GAMMA_RETURN_IF_ERROR(ValidateInt32Field(schema, p.field, "predicate field"));
  }
  for (const Assignment& a : spec.assignments) {
    GAMMA_RETURN_IF_ERROR(ValidateInt32Field(schema, a.field, "assigned field"));
    const bool placement_sensitive =
        relation->strategy == PartitionStrategy::kHashed ||
        relation->strategy == PartitionStrategy::kRangeUser ||
        relation->strategy == PartitionStrategy::kRangeUniform;
    if (placement_sensitive && a.field == relation->partition_field) {
      return Status::InvalidArgument(
          "updating the partitioning attribute would strand the tuple on "
          "the wrong site; delete and re-insert instead");
    }
  }

  return RunDmlPhase(
      machine, relation, "update",
      [&](sim::Node& n, storage::HeapFile& fragment) {
        return fragment.UpdateInPlace([&](uint8_t* record) {
          if (!spec.predicate.empty()) {
            n.ChargeCpu(n.cost().cpu_predicate_seconds,
                        sim::CostCategory::kPredicate);
            storage::Tuple view(record, schema.tuple_bytes());
            if (!EvalAll(spec.predicate, schema, view)) {
              return storage::HeapFile::UpdateAction::kKeep;
            }
          }
          for (const Assignment& a : spec.assignments) {
            schema.SetInt32(record, static_cast<size_t>(a.field), a.value);
          }
          return storage::HeapFile::UpdateAction::kUpdated;
        });
      });
}

Result<DmlOutput> ExecuteDelete(sim::Machine& machine, Catalog& catalog,
                                const std::string& relation_name,
                                const PredicateList& predicate) {
  GAMMA_ASSIGN_OR_RETURN(StoredRelation * relation,
                         catalog.Get(relation_name));
  const storage::Schema& schema = relation->schema();
  for (const Predicate& p : predicate) {
    GAMMA_RETURN_IF_ERROR(ValidateInt32Field(schema, p.field, "predicate field"));
  }
  return RunDmlPhase(
      machine, relation, "delete",
      [&](sim::Node& n, storage::HeapFile& fragment) {
        return fragment.UpdateInPlace([&](uint8_t* record) {
          if (!predicate.empty()) {
            n.ChargeCpu(n.cost().cpu_predicate_seconds,
                        sim::CostCategory::kPredicate);
            storage::Tuple view(record, schema.tuple_bytes());
            if (!EvalAll(predicate, schema, view)) {
              return storage::HeapFile::UpdateAction::kKeep;
            }
          }
          return storage::HeapFile::UpdateAction::kDelete;
        });
      });
}

}  // namespace gammadb::db
