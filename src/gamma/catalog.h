// Catalog of stored relations. A stored relation is horizontally
// declustered: one heap-file fragment per disk node (paper Section 2.2,
// "all relations are horizontally partitioned across all disk drives in
// the system").
#ifndef GAMMA_GAMMA_CATALOG_H_
#define GAMMA_GAMMA_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "sim/machine.h"
#include "storage/btree.h"
#include "storage/heap_file.h"
#include "storage/schema.h"

namespace gammadb::db {

/// How tuples were assigned to disk sites at load time (Section 2.2).
enum class PartitionStrategy {
  kRoundRobin,
  kHashed,        // randomizing function on the partitioning attribute
  kRangeUser,     // user-specified key ranges per site
  kRangeUniform,  // system-derived ranges for a uniform spread
};

const char* PartitionStrategyName(PartitionStrategy s);

class StoredRelation {
 public:
  /// Creates an empty relation declustered over `home_nodes` (which must
  /// all be disk nodes of `machine`).
  StoredRelation(std::string name, storage::Schema schema,
                 std::vector<int> home_nodes, sim::Machine* machine);

  const std::string& name() const { return name_; }
  const storage::Schema& schema() const { return schema_; }
  const std::vector<int>& home_nodes() const { return home_nodes_; }
  size_t num_fragments() const { return fragments_.size(); }

  /// Fragment living on home_nodes()[i].
  storage::HeapFile& fragment(size_t i) { return *fragments_[i]; }
  const storage::HeapFile& fragment(size_t i) const { return *fragments_[i]; }

  size_t total_tuples() const;
  uint64_t total_bytes() const;

  /// Reads every tuple of every fragment without simulated cost
  /// (verification only).
  std::vector<storage::Tuple> PeekAllTuples() const;

  /// Releases all fragment pages.
  void FreeStorage();

  // --- WiSS B+ indices ----------------------------------------------------

  /// Builds one B+-tree per fragment over the given int32 field
  /// (key -> record id). One index per relation; rebuilding replaces
  /// it. Index construction scans every fragment (charged).
  Status BuildIndex(sim::Machine& machine, int field);

  bool has_index() const { return indexed_field_ >= 0; }
  int indexed_field() const { return indexed_field_; }

  /// Index of fragment i; requires has_index().
  const storage::BPlusTree& fragment_index(size_t i) const;

  /// Indices become stale after in-place updates or deletes; DML
  /// operators call this.
  void DropIndexes();

  // Declustering metadata (set by the loader).
  PartitionStrategy strategy = PartitionStrategy::kRoundRobin;
  int partition_field = -1;
  uint64_t partition_hash_seed = 0;

 private:
  std::string name_;
  storage::Schema schema_;
  std::vector<int> home_nodes_;
  std::vector<std::unique_ptr<storage::HeapFile>> fragments_;
  int indexed_field_ = -1;
  std::vector<std::unique_ptr<storage::BPlusTree>> indexes_;
};

class Catalog {
 public:
  /// Creates a relation declustered across all disk nodes of `machine`.
  Result<StoredRelation*> Create(sim::Machine& machine, std::string name,
                                 storage::Schema schema);

  Result<StoredRelation*> Get(const std::string& name) const;

  /// Frees the relation's storage and forgets it.
  Status Drop(const std::string& name);

  std::vector<std::string> Names() const;

 private:
  std::map<std::string, std::unique_ptr<StoredRelation>> relations_;
};

}  // namespace gammadb::db

#endif  // GAMMA_GAMMA_CATALOG_H_
