#include "storage/byte_file.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"

namespace gammadb::storage {

ByteFile::ByteFile(sim::Node* node, std::string name)
    : node_(node), name_(std::move(name)) {
  GAMMA_CHECK(node_->has_disk()) << "byte file requires a disk node";
}

Status ByteFile::Append(const uint8_t* data, size_t n) {
  if (tail_flushed_) {
    // The trailing partial page was snapshotted to disk; retract the
    // snapshot and continue filling the in-memory tail.
    node_->disk().FreePage(pages_.back());
    pages_.pop_back();
    tail_flushed_ = false;
  }
  tail_.insert(tail_.end(), data, data + n);
  size_ += n;
  while (tail_.size() >= page_bytes()) {
    const sim::PageId id = node_->disk().AllocatePage();
    const Status write = node_->disk().WritePage(
        id, tail_.data(), sim::AccessPattern::kSequential);
    if (!write.ok()) {
      // Keep the page's bytes buffered in the tail: the file stays
      // consistent (size_ already counts them) and a later Append or
      // FlushAppends retries the write.
      node_->disk().FreePage(id);
      return write;
    }
    pages_.push_back(id);
    tail_.erase(tail_.begin(), tail_.begin() + page_bytes());
  }
  return Status::OK();
}

Status ByteFile::FlushAppends() {
  while (tail_.size() >= page_bytes()) {
    // A previous Append failed mid-write and left whole pages buffered.
    const sim::PageId id = node_->disk().AllocatePage();
    GAMMA_RETURN_IF_ERROR(node_->disk().WritePage(
        id, tail_.data(), sim::AccessPattern::kSequential));
    pages_.push_back(id);
    tail_.erase(tail_.begin(), tail_.begin() + page_bytes());
  }
  if (tail_.empty() || tail_flushed_) return Status::OK();
  std::vector<uint8_t> page(page_bytes(), 0);
  std::memcpy(page.data(), tail_.data(), tail_.size());
  const sim::PageId id = node_->disk().AllocatePage();
  const Status write =
      node_->disk().WritePage(id, page.data(), sim::AccessPattern::kSequential);
  if (!write.ok()) {
    node_->disk().FreePage(id);
    return write;
  }
  pages_.push_back(id);
  tail_flushed_ = true;
  return Status::OK();
}

Status ByteFile::ReadAt(uint64_t offset, size_t n, uint8_t* out) const {
  if (offset + n > size_) {
    return Status::OutOfRange("read past end of byte file");
  }
  if (n == 0) return Status::OK();
  const uint64_t persistent_bytes =
      tail_flushed_
          ? size_
          : static_cast<uint64_t>(pages_.size()) * page_bytes();
  if (offset + n > persistent_bytes) {
    return Status::FailedPrecondition("unflushed bytes; call FlushAppends");
  }
  std::vector<uint8_t> page(page_bytes());
  size_t produced = 0;
  while (produced < n) {
    const uint64_t pos = offset + produced;
    const size_t page_index = static_cast<size_t>(pos / page_bytes());
    const size_t in_page = static_cast<size_t>(pos % page_bytes());
    const size_t take =
        std::min(static_cast<size_t>(page_bytes()) - in_page, n - produced);
    const sim::AccessPattern pattern = pos == last_read_end_
                                           ? sim::AccessPattern::kSequential
                                           : sim::AccessPattern::kRandom;
    GAMMA_RETURN_IF_ERROR(
        node_->disk().ReadPage(pages_[page_index], page.data(), pattern));
    std::memcpy(out + produced, page.data() + in_page, take);
    produced += take;
    last_read_end_ = pos + take;
  }
  return Status::OK();
}

void ByteFile::Free() {
  for (sim::PageId id : pages_) node_->disk().FreePage(id);
  pages_.clear();
  tail_.clear();
  tail_flushed_ = false;
  size_ = 0;
  last_read_end_ = UINT64_MAX;
}

}  // namespace gammadb::storage
