// Fixed-length record schemas.
//
// The Wisconsin benchmark relations (paper Section 4) are fixed-length:
// thirteen 4-byte integers followed by three 52-byte strings, 208 bytes
// per tuple. The storage layer supports any fixed-length composition of
// 32-bit integers and fixed-width character fields, which covers every
// relation the paper's experiments touch (including join results, which
// concatenate two schemas).
#ifndef GAMMA_STORAGE_SCHEMA_H_
#define GAMMA_STORAGE_SCHEMA_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace gammadb::storage {

enum class FieldType : uint8_t {
  kInt32,
  kChar,  // fixed-width character field, space padded
};

struct Field {
  std::string name;
  FieldType type;
  uint32_t width;  // bytes; must be 4 for kInt32

  static Field Int32(std::string name) {
    return Field{std::move(name), FieldType::kInt32, 4};
  }
  static Field Char(std::string name, uint32_t width) {
    return Field{std::move(name), FieldType::kChar, width};
  }
};

class Schema {
 public:
  explicit Schema(std::vector<Field> fields);

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  uint32_t offset(size_t i) const { return offsets_[i]; }
  /// Total serialized tuple size in bytes.
  uint32_t tuple_bytes() const { return tuple_bytes_; }

  /// Index of the named field, or -1.
  int FieldIndex(std::string_view name) const;

  // Raw accessors over a serialized tuple buffer (little-endian ints).
  int32_t GetInt32(const uint8_t* tuple, size_t field) const;
  void SetInt32(uint8_t* tuple, size_t field, int32_t value) const;
  std::string_view GetChars(const uint8_t* tuple, size_t field) const;
  /// Copies `value` into the field, space-padding or truncating to width.
  void SetChars(uint8_t* tuple, size_t field, std::string_view value) const;

  /// Schema of the concatenation of an `a` tuple and a `b` tuple (join
  /// results). Field names from `b` that collide with `a` get a "_2"
  /// suffix.
  static Schema Concat(const Schema& a, const Schema& b);

  bool operator==(const Schema& other) const;

 private:
  std::vector<Field> fields_;
  std::vector<uint32_t> offsets_;
  uint32_t tuple_bytes_;
};

}  // namespace gammadb::storage

#endif  // GAMMA_STORAGE_SCHEMA_H_
