// NOTE: B+-tree index I/O is outside the fault-injection recovery scope
// (docs/fault_injection.md): index builds and probes run against
// permanent relations before faults are armed, so an injected hard I/O
// error here aborts via GAMMA_CHECK_OK rather than propagating Status.
#include "storage/btree.h"

#include <cstring>
#include <limits>

#include "common/logging.h"

namespace gammadb::storage {

namespace {

// Node page layout:
//   offset 0: uint16 count
//   offset 2: uint8  is_leaf
//   offset 3: pad
//   offset 4: uint32 link  (leaf: next-leaf page id; internal: leftmost child)
//   offset 8: packed entries
//     leaf entry:     int32 key + uint64 value  (12 bytes)
//     internal entry: int32 key + uint32 child  (8 bytes; child is right of key)
constexpr uint32_t kHeader = 8;
constexpr uint32_t kLeafEntry = 12;
constexpr uint32_t kInternalEntry = 8;
constexpr uint32_t kNoPage = 0xFFFFFFFFu;

/// Mutable decoded view over a node page buffer.
class NodeView {
 public:
  explicit NodeView(uint8_t* buf) : buf_(buf) {}

  uint16_t count() const {
    uint16_t c;
    std::memcpy(&c, buf_, sizeof(c));
    return c;
  }
  void set_count(uint16_t c) { std::memcpy(buf_, &c, sizeof(c)); }

  bool is_leaf() const { return buf_[2] != 0; }
  void set_is_leaf(bool v) { buf_[2] = v ? 1 : 0; }

  uint32_t link() const {
    uint32_t l;
    std::memcpy(&l, buf_ + 4, sizeof(l));
    return l;
  }
  void set_link(uint32_t l) { std::memcpy(buf_ + 4, &l, sizeof(l)); }

  // --- Leaf entries ---
  int32_t LeafKey(uint16_t i) const {
    int32_t k;
    std::memcpy(&k, buf_ + kHeader + i * kLeafEntry, sizeof(k));
    return k;
  }
  uint64_t LeafValue(uint16_t i) const {
    uint64_t v;
    std::memcpy(&v, buf_ + kHeader + i * kLeafEntry + 4, sizeof(v));
    return v;
  }
  void SetLeafEntry(uint16_t i, int32_t key, uint64_t value) {
    std::memcpy(buf_ + kHeader + i * kLeafEntry, &key, sizeof(key));
    std::memcpy(buf_ + kHeader + i * kLeafEntry + 4, &value, sizeof(value));
  }
  void LeafInsertAt(uint16_t pos, int32_t key, uint64_t value) {
    const uint16_t n = count();
    std::memmove(buf_ + kHeader + (pos + 1) * kLeafEntry,
                 buf_ + kHeader + pos * kLeafEntry,
                 static_cast<size_t>(n - pos) * kLeafEntry);
    SetLeafEntry(pos, key, value);
    set_count(static_cast<uint16_t>(n + 1));
  }

  // --- Internal entries ---
  int32_t InternalKey(uint16_t i) const {
    int32_t k;
    std::memcpy(&k, buf_ + kHeader + i * kInternalEntry, sizeof(k));
    return k;
  }
  uint32_t InternalChild(uint16_t i) const {
    uint32_t c;
    std::memcpy(&c, buf_ + kHeader + i * kInternalEntry + 4, sizeof(c));
    return c;
  }
  void SetInternalEntry(uint16_t i, int32_t key, uint32_t child) {
    std::memcpy(buf_ + kHeader + i * kInternalEntry, &key, sizeof(key));
    std::memcpy(buf_ + kHeader + i * kInternalEntry + 4, &child, sizeof(child));
  }
  void InternalInsertAt(uint16_t pos, int32_t key, uint32_t child) {
    const uint16_t n = count();
    std::memmove(buf_ + kHeader + (pos + 1) * kInternalEntry,
                 buf_ + kHeader + pos * kInternalEntry,
                 static_cast<size_t>(n - pos) * kInternalEntry);
    SetInternalEntry(pos, key, child);
    set_count(static_cast<uint16_t>(n + 1));
  }

  /// For a search key, the child page to descend into.
  /// lower_bound semantics: descend LEFT of the first separator >= key,
  /// so equal keys are always found at or right of the reached leaf.
  uint32_t DescendLowerBound(int32_t key) const {
    const uint16_t n = count();
    uint16_t i = 0;
    while (i < n && InternalKey(i) < key) ++i;
    return i == 0 ? link() : InternalChild(static_cast<uint16_t>(i - 1));
  }

  /// upper_bound semantics (inserts go to the rightmost eligible child).
  uint16_t ChildIndexUpperBound(int32_t key) const {
    const uint16_t n = count();
    uint16_t i = 0;
    while (i < n && InternalKey(i) <= key) ++i;
    return i;  // 0 => leftmost child (link), else InternalChild(i-1)
  }
  uint32_t ChildAt(uint16_t idx) const {
    return idx == 0 ? link() : InternalChild(static_cast<uint16_t>(idx - 1));
  }

 private:
  uint8_t* buf_;
};

}  // namespace

BPlusTree::BPlusTree(sim::Node* node) : node_(node) {
  GAMMA_CHECK(node_->has_disk());
  root_ = NewLeaf();
}

BPlusTree::~BPlusTree() {
  for (sim::PageId id : allocated_pages_) node_->disk().FreePage(id);
}

sim::PageId BPlusTree::NewLeaf() {
  const sim::PageId id = node_->disk().AllocatePage();
  allocated_pages_.push_back(id);
  std::vector<uint8_t> buf(node_->cost().page_bytes, 0);
  NodeView view(buf.data());
  view.set_is_leaf(true);
  view.set_link(kNoPage);
  GAMMA_CHECK_OK(
      node_->disk().WritePage(id, buf.data(), sim::AccessPattern::kRandom));
  return id;
}

sim::PageId BPlusTree::NewInternal() {
  const sim::PageId id = node_->disk().AllocatePage();
  allocated_pages_.push_back(id);
  std::vector<uint8_t> buf(node_->cost().page_bytes, 0);
  NodeView view(buf.data());
  view.set_is_leaf(false);
  view.set_link(kNoPage);
  GAMMA_CHECK_OK(
      node_->disk().WritePage(id, buf.data(), sim::AccessPattern::kRandom));
  return id;
}

void BPlusTree::Insert(int32_t key, uint64_t value) {
  auto split = InsertRecursive(root_, key, value);
  if (split.has_value()) {
    // Grow a new root.
    const sim::PageId new_root = NewInternal();
    std::vector<uint8_t> buf(node_->cost().page_bytes);
    GAMMA_CHECK_OK(node_->disk().ReadPage(new_root, buf.data(),
                                          sim::AccessPattern::kRandom));
    NodeView view(buf.data());
    view.set_link(root_);
    view.SetInternalEntry(0, split->separator, split->right);
    view.set_count(1);
    GAMMA_CHECK_OK(node_->disk().WritePage(new_root, buf.data(),
                                           sim::AccessPattern::kRandom));
    root_ = new_root;
    ++height_;
  }
  ++size_;
}

std::optional<BPlusTree::SplitResult> BPlusTree::InsertRecursive(
    sim::PageId page, int32_t key, uint64_t value) {
  const uint32_t page_bytes = node_->cost().page_bytes;
  const uint16_t leaf_cap =
      static_cast<uint16_t>((page_bytes - kHeader) / kLeafEntry);
  const uint16_t internal_cap =
      static_cast<uint16_t>((page_bytes - kHeader) / kInternalEntry);

  std::vector<uint8_t> buf(page_bytes);
  GAMMA_CHECK_OK(
      node_->disk().ReadPage(page, buf.data(), sim::AccessPattern::kRandom));
  NodeView view(buf.data());

  if (view.is_leaf()) {
    // Insert position: after existing equal keys (stable for duplicates).
    uint16_t pos = 0;
    const uint16_t n = view.count();
    while (pos < n && view.LeafKey(pos) <= key) ++pos;
    if (n < leaf_cap) {
      view.LeafInsertAt(pos, key, value);
      GAMMA_CHECK_OK(node_->disk().WritePage(page, buf.data(),
                                             sim::AccessPattern::kRandom));
      return std::nullopt;
    }
    // Split. Prefer a split point that does not straddle a duplicate
    // group so equal keys stay reachable from one leaf.
    uint16_t mid = static_cast<uint16_t>(n / 2);
    while (mid > 1 && view.LeafKey(static_cast<uint16_t>(mid - 1)) ==
                          view.LeafKey(mid)) {
      --mid;
    }
    if (mid <= 1) mid = static_cast<uint16_t>(n / 2);  // all-equal node

    const sim::PageId right_id = NewLeaf();
    std::vector<uint8_t> rbuf(page_bytes);
    GAMMA_CHECK_OK(node_->disk().ReadPage(right_id, rbuf.data(),
                                        sim::AccessPattern::kRandom));
    NodeView right(rbuf.data());
    for (uint16_t i = mid; i < n; ++i) {
      right.SetLeafEntry(static_cast<uint16_t>(i - mid), view.LeafKey(i),
                         view.LeafValue(i));
    }
    right.set_count(static_cast<uint16_t>(n - mid));
    right.set_link(view.link());
    view.set_count(mid);
    view.set_link(right_id);

    // Insert the new entry into the proper half.
    const int32_t sep = right.LeafKey(0);
    if (key >= sep) {
      uint16_t rpos = 0;
      const uint16_t rn = right.count();
      while (rpos < rn && right.LeafKey(rpos) <= key) ++rpos;
      right.LeafInsertAt(rpos, key, value);
    } else {
      uint16_t lpos = 0;
      const uint16_t ln = view.count();
      while (lpos < ln && view.LeafKey(lpos) <= key) ++lpos;
      view.LeafInsertAt(lpos, key, value);
    }
    GAMMA_CHECK_OK(
      node_->disk().WritePage(page, buf.data(), sim::AccessPattern::kRandom));
    GAMMA_CHECK_OK(node_->disk().WritePage(right_id, rbuf.data(),
                                         sim::AccessPattern::kRandom));
    return SplitResult{sep, right_id};
  }

  // Internal node.
  const uint16_t child_idx = view.ChildIndexUpperBound(key);
  auto child_split = InsertRecursive(view.ChildAt(child_idx), key, value);
  if (!child_split.has_value()) return std::nullopt;

  const uint16_t n = view.count();
  if (n < internal_cap) {
    view.InternalInsertAt(child_idx, child_split->separator,
                          child_split->right);
    GAMMA_CHECK_OK(
      node_->disk().WritePage(page, buf.data(), sim::AccessPattern::kRandom));
    return std::nullopt;
  }

  // Split the internal node: median separator moves up.
  // Build the would-be entry list including the new one, then split it.
  std::vector<std::pair<int32_t, uint32_t>> entries;
  entries.reserve(static_cast<size_t>(n) + 1);
  for (uint16_t i = 0; i < n; ++i) {
    entries.emplace_back(view.InternalKey(i), view.InternalChild(i));
  }
  entries.insert(entries.begin() + child_idx,
                 {child_split->separator, child_split->right});

  const size_t total = entries.size();
  const size_t mid = total / 2;  // entries[mid] moves up
  const int32_t up_key = entries[mid].first;

  const sim::PageId right_id = NewInternal();
  std::vector<uint8_t> rbuf(page_bytes);
  GAMMA_CHECK_OK(node_->disk().ReadPage(right_id, rbuf.data(),
                                        sim::AccessPattern::kRandom));
  NodeView right(rbuf.data());
  right.set_link(entries[mid].second);  // leftmost child of the right node
  uint16_t rcount = 0;
  for (size_t i = mid + 1; i < total; ++i) {
    right.SetInternalEntry(rcount, entries[i].first, entries[i].second);
    ++rcount;
  }
  right.set_count(rcount);

  // Left node keeps entries [0, mid).
  view.set_count(0);
  uint16_t lcount = 0;
  for (size_t i = 0; i < mid; ++i) {
    view.SetInternalEntry(lcount, entries[i].first, entries[i].second);
    ++lcount;
  }
  view.set_count(lcount);

  GAMMA_CHECK_OK(
      node_->disk().WritePage(page, buf.data(), sim::AccessPattern::kRandom));
  GAMMA_CHECK_OK(node_->disk().WritePage(right_id, rbuf.data(),
                                         sim::AccessPattern::kRandom));
  return SplitResult{up_key, right_id};
}

sim::PageId BPlusTree::FindLeaf(int32_t key) const {
  const uint32_t page_bytes = node_->cost().page_bytes;
  std::vector<uint8_t> buf(page_bytes);
  sim::PageId page = root_;
  for (;;) {
    GAMMA_CHECK_OK(
      node_->disk().ReadPage(page, buf.data(), sim::AccessPattern::kRandom));
    NodeView view(buf.data());
    if (view.is_leaf()) return page;
    page = view.DescendLowerBound(key);
  }
}

std::vector<uint64_t> BPlusTree::Search(int32_t key) const {
  std::vector<uint64_t> out;
  const uint32_t page_bytes = node_->cost().page_bytes;
  std::vector<uint8_t> buf(page_bytes);
  sim::PageId page = FindLeaf(key);
  for (;;) {
    GAMMA_CHECK_OK(
      node_->disk().ReadPage(page, buf.data(), sim::AccessPattern::kRandom));
    NodeView view(buf.data());
    const uint16_t n = view.count();
    bool past_key = false;
    for (uint16_t i = 0; i < n; ++i) {
      const int32_t k = view.LeafKey(i);
      if (k == key) {
        out.push_back(view.LeafValue(i));
      } else if (k > key) {
        past_key = true;
        break;
      }
    }
    if (past_key || view.link() == kNoPage) break;
    page = view.link();
  }
  return out;
}

std::vector<std::pair<int32_t, uint64_t>> BPlusTree::RangeScan(
    int32_t lo, int32_t hi) const {
  std::vector<std::pair<int32_t, uint64_t>> out;
  if (lo > hi) return out;
  const uint32_t page_bytes = node_->cost().page_bytes;
  std::vector<uint8_t> buf(page_bytes);
  sim::PageId page = FindLeaf(lo);
  for (;;) {
    GAMMA_CHECK_OK(
      node_->disk().ReadPage(page, buf.data(), sim::AccessPattern::kRandom));
    NodeView view(buf.data());
    const uint16_t n = view.count();
    bool done = false;
    for (uint16_t i = 0; i < n; ++i) {
      const int32_t k = view.LeafKey(i);
      if (k < lo) continue;
      if (k > hi) {
        done = true;
        break;
      }
      out.emplace_back(k, view.LeafValue(i));
    }
    if (done || view.link() == kNoPage) break;
    page = view.link();
  }
  return out;
}

void BPlusTree::ValidateInvariants() const {
  // Iterative walk: collect leaf depth and ordering via RangeScan over
  // the full key domain, then check monotonicity.
  auto all = RangeScan(std::numeric_limits<int32_t>::min(),
                       std::numeric_limits<int32_t>::max());
  GAMMA_CHECK_EQ(all.size(), size_);
  for (size_t i = 1; i < all.size(); ++i) {
    GAMMA_CHECK_LE(all[i - 1].first, all[i].first)
        << "leaf chain out of order at position " << i;
  }
}

}  // namespace gammadb::storage
