#include "storage/external_sort.h"

#include <algorithm>
#include <queue>

#include "common/logging.h"
#include "storage/page.h"

namespace gammadb::storage {

namespace {

/// Cursor over one sorted run; caches the current tuple and its key.
class RunCursor {
 public:
  RunCursor(const HeapFile* file, const Schema* schema, int key_field)
      : scanner_(file->Scan()), schema_(schema), key_field_(key_field) {
    Advance();
  }

  bool valid() const { return valid_; }
  int32_t key() const { return key_; }
  const Tuple& tuple() const { return current_; }
  /// Non-OK when the cursor stopped on a page-read failure rather than
  /// at end of run.
  const Status& status() const { return scanner_.status(); }

  void Advance() {
    valid_ = scanner_.Next(&current_);
    if (valid_) key_ = current_.GetInt32(*schema_, static_cast<size_t>(key_field_));
  }

 private:
  HeapFile::Scanner scanner_;
  const Schema* schema_;
  int key_field_;
  Tuple current_;
  int32_t key_ = 0;
  bool valid_ = false;
};

/// k-way merge over run cursors; comparator invocations are counted so
/// real comparison work is charged, not an estimate.
class MergeStream : public TupleStream {
 public:
  MergeStream(sim::Node* node, const Schema* schema, int key_field,
              std::vector<HeapFile>* runs)
      : node_(node) {
    cursors_.reserve(runs->size());
    for (HeapFile& run : *runs) {
      cursors_.emplace_back(
          std::make_unique<RunCursor>(&run, schema, key_field));
      if (!cursors_.back()->valid()) {
        if (!cursors_.back()->status().ok() && status_.ok()) {
          status_ = cursors_.back()->status();
        }
        cursors_.pop_back();
      }
    }
    for (size_t i = 0; i < cursors_.size(); ++i) heap_.push_back(i);
    const auto greater = [this](size_t a, size_t b) {
      ++compares_;
      return cursors_[a]->key() > cursors_[b]->key();
    };
    std::make_heap(heap_.begin(), heap_.end(), greater);
  }

  bool Next(Tuple* out) override {
    ChargeCompares();
    if (!status_.ok() || heap_.empty()) return false;
    const auto greater = [this](size_t a, size_t b) {
      ++compares_;
      return cursors_[a]->key() > cursors_[b]->key();
    };
    std::pop_heap(heap_.begin(), heap_.end(), greater);
    const size_t idx = heap_.back();
    *out = cursors_[idx]->tuple();
    cursors_[idx]->Advance();
    if (cursors_[idx]->valid()) {
      std::push_heap(heap_.begin(), heap_.end(), greater);
    } else {
      heap_.pop_back();
      if (!cursors_[idx]->status().ok()) status_ = cursors_[idx]->status();
    }
    ChargeCompares();
    return true;
  }

  Status status() const override { return status_; }

 private:
  void ChargeCompares() {
    if (compares_ > 0) {
      node_->ChargeCpu(static_cast<double>(compares_) *
                           node_->cost().cpu_sort_compare_seconds,
                       sim::CostCategory::kSortCompare);
      compares_ = 0;
    }
  }

  sim::Node* node_;
  std::vector<std::unique_ptr<RunCursor>> cursors_;
  std::vector<size_t> heap_;
  Status status_;
  size_t compares_ = 0;
};

/// Stream over a fully in-memory sorted buffer.
class VectorStream : public TupleStream {
 public:
  explicit VectorStream(std::vector<Tuple> tuples)
      : tuples_(std::move(tuples)) {}

  bool Next(Tuple* out) override {
    if (next_ >= tuples_.size()) return false;
    *out = std::move(tuples_[next_++]);
    return true;
  }

 private:
  std::vector<Tuple> tuples_;
  size_t next_ = 0;
};

}  // namespace

ExternalSort::ExternalSort(sim::Node* node, const Schema* schema,
                           int key_field, uint32_t memory_pages)
    : node_(node),
      schema_(schema),
      key_field_(key_field),
      memory_pages_(std::max(3u, memory_pages)) {
  GAMMA_CHECK(key_field >= 0 &&
              static_cast<size_t>(key_field) < schema->num_fields());
  GAMMA_CHECK(schema->field(static_cast<size_t>(key_field)).type ==
              FieldType::kInt32)
      << "sort key must be an int32 field";
  buffer_capacity_tuples_ =
      static_cast<size_t>(memory_pages_) *
      PageCapacity(node->cost().page_bytes, schema->tuple_bytes());
  buffer_.reserve(buffer_capacity_tuples_);
}

ExternalSort::~ExternalSort() {
  for (HeapFile& run : runs_) run.Free();
}

Status ExternalSort::Add(const Tuple& tuple) {
  GAMMA_CHECK(!finished_);
  buffer_.push_back(tuple);
  ++tuple_count_;
  if (buffer_.size() >= buffer_capacity_tuples_) {
    GAMMA_RETURN_IF_ERROR(SpillRun());
  }
  return Status::OK();
}

Status ExternalSort::AddFile(const HeapFile& file) {
  // Block-granular ingest: the per-tuple read CPU the scalar scan
  // charged is charged here per view (same order, including around
  // mid-block spills), and each tuple is copied ONCE — page image
  // straight into the sort buffer, with no intermediate Tuple.
  auto scanner = file.Scan();
  TupleBlock block;
  while (scanner.NextBlock(&block)) {
    for (size_t i = 0; i < block.size(); ++i) {
      node_->ChargeCpu(node_->cost().cpu_read_tuple_seconds,
                       sim::CostCategory::kReadTuple);
      GAMMA_CHECK(!finished_);
      const TupleView v = block.view(i);
      buffer_.emplace_back(v.data, v.size);
      ++tuple_count_;
      if (buffer_.size() >= buffer_capacity_tuples_) {
        GAMMA_RETURN_IF_ERROR(SpillRun());
      }
    }
  }
  return scanner.status();
}

void ExternalSort::SortBuffer() {
  size_t compares = 0;
  const size_t key = static_cast<size_t>(key_field_);
  std::sort(buffer_.begin(), buffer_.end(),
            [this, &compares, key](const Tuple& a, const Tuple& b) {
              ++compares;
              return a.GetInt32(*schema_, key) < b.GetInt32(*schema_, key);
            });
  node_->ChargeCpu(
      static_cast<double>(compares) * node_->cost().cpu_sort_compare_seconds,
      sim::CostCategory::kSortCompare);
}

Status ExternalSort::SpillRun() {
  if (buffer_.empty()) return Status::OK();
  SortBuffer();
  HeapFile run(node_, schema_, "sort-run");
  Status st;
  for (const Tuple& t : buffer_) {
    st = run.Append(t);
    if (!st.ok()) break;
  }
  if (st.ok()) st = run.FlushAppends();
  if (!st.ok()) {
    run.Free();
    return st;
  }
  runs_.push_back(std::move(run));
  buffer_.clear();
  return Status::OK();
}

Status ExternalSort::MergeGroupInto(std::vector<HeapFile>&& group,
                                    HeapFile* out) {
  MergeStream merge(node_, schema_, key_field_, &group);
  Tuple t;
  Status st;
  while (merge.Next(&t)) {
    st = out->Append(t);
    if (!st.ok()) break;
  }
  if (st.ok()) st = merge.status();
  if (st.ok()) st = out->FlushAppends();
  if (!st.ok()) {
    // Put the inputs back so the destructor frees them; the partial
    // output is freed by the caller.
    for (HeapFile& run : group) runs_.push_back(std::move(run));
    return st;
  }
  for (HeapFile& run : group) run.Free();
  return Status::OK();
}

Status ExternalSort::FinishInput() {
  GAMMA_CHECK(!finished_);
  finished_ = true;
  if (runs_.empty()) {
    // Fits in memory: sort in place, stream directly.
    SortBuffer();
    return Status::OK();
  }
  GAMMA_RETURN_IF_ERROR(SpillRun());  // tail
  const size_t fan_in = static_cast<size_t>(memory_pages_ - 1);
  // Intermediate merges until one streamed merge suffices. Merge the
  // SMALLEST runs first and only as many as needed (the textbook
  // optimal merge pattern): the first step reduces the run count to a
  // multiple that later full-width steps bring exactly to fan_in.
  while (runs_.size() > fan_in) {
    std::sort(runs_.begin(), runs_.end(),
              [](const HeapFile& a, const HeapFile& b) {
                return a.tuple_count() < b.tuple_count();
              });
    // Merging k runs removes k-1 from the count; the first (smallest)
    // step removes just enough for the remainder to divide cleanly.
    const size_t excess = runs_.size() - fan_in;
    const size_t k = std::min(fan_in, excess + 1);
    std::vector<HeapFile> group;
    group.reserve(k);
    for (size_t j = 0; j < k; ++j) group.push_back(std::move(runs_[j]));
    runs_.erase(runs_.begin(), runs_.begin() + static_cast<long>(k));
    intermediate_merged_tuples_ += [&group] {
      size_t total = 0;
      for (const HeapFile& r : group) total += r.tuple_count();
      return total;
    }();
    HeapFile merged(node_, schema_, "sort-run");
    const Status st = MergeGroupInto(std::move(group), &merged);
    if (!st.ok()) {
      merged.Free();
      return st;
    }
    runs_.push_back(std::move(merged));
  }
  return Status::OK();
}

int ExternalSort::intermediate_passes() const {
  if (tuple_count_ == 0 || intermediate_merged_tuples_ == 0) return 0;
  // Effective full passes over the data performed by intermediate
  // merging, rounded up (the figure behind the paper's sort-merge
  // staircase).
  return static_cast<int>(
      (intermediate_merged_tuples_ + tuple_count_ - 1) / tuple_count_);
}

std::unique_ptr<TupleStream> ExternalSort::OpenStream() {
  GAMMA_CHECK(finished_) << "FinishInput() not called";
  GAMMA_CHECK(!streamed_) << "OpenStream() may only be called once";
  streamed_ = true;
  if (runs_.empty()) {
    return std::make_unique<VectorStream>(std::move(buffer_));
  }
  return std::make_unique<MergeStream>(node_, schema_, key_field_, &runs_);
}

}  // namespace gammadb::storage
