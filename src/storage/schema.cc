#include "storage/schema.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"

namespace gammadb::storage {

Schema::Schema(std::vector<Field> fields) : fields_(std::move(fields)) {
  GAMMA_CHECK(!fields_.empty());
  offsets_.reserve(fields_.size());
  uint32_t offset = 0;
  for (const Field& f : fields_) {
    if (f.type == FieldType::kInt32) {
      GAMMA_CHECK_EQ(f.width, 4u) << "int32 field " << f.name;
    } else {
      GAMMA_CHECK_GT(f.width, 0u) << "char field " << f.name;
    }
    offsets_.push_back(offset);
    offset += f.width;
  }
  tuple_bytes_ = offset;
}

int Schema::FieldIndex(std::string_view name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

int32_t Schema::GetInt32(const uint8_t* tuple, size_t field) const {
  GAMMA_DCHECK(fields_[field].type == FieldType::kInt32);
  int32_t v;
  std::memcpy(&v, tuple + offsets_[field], sizeof(v));
  return v;
}

void Schema::SetInt32(uint8_t* tuple, size_t field, int32_t value) const {
  GAMMA_DCHECK(fields_[field].type == FieldType::kInt32);
  std::memcpy(tuple + offsets_[field], &value, sizeof(value));
}

std::string_view Schema::GetChars(const uint8_t* tuple, size_t field) const {
  GAMMA_DCHECK(fields_[field].type == FieldType::kChar);
  return std::string_view(reinterpret_cast<const char*>(tuple + offsets_[field]),
                          fields_[field].width);
}

void Schema::SetChars(uint8_t* tuple, size_t field, std::string_view value) const {
  GAMMA_DCHECK(fields_[field].type == FieldType::kChar);
  const uint32_t width = fields_[field].width;
  uint8_t* dst = tuple + offsets_[field];
  const size_t n = std::min<size_t>(value.size(), width);
  std::memcpy(dst, value.data(), n);
  if (n < width) std::memset(dst + n, ' ', width - n);
}

Schema Schema::Concat(const Schema& a, const Schema& b) {
  std::vector<Field> fields = a.fields_;
  fields.reserve(a.num_fields() + b.num_fields());
  for (const Field& f : b.fields_) {
    Field copy = f;
    if (a.FieldIndex(f.name) >= 0) copy.name += "_2";
    fields.push_back(std::move(copy));
  }
  return Schema(std::move(fields));
}

bool Schema::operator==(const Schema& other) const {
  if (fields_.size() != other.fields_.size()) return false;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name != other.fields_[i].name ||
        fields_[i].type != other.fields_[i].type ||
        fields_[i].width != other.fields_[i].width) {
      return false;
    }
  }
  return true;
}

}  // namespace gammadb::storage
