// Pull-based tuple stream interface (sorted-run merges, scans, ...).
#ifndef GAMMA_STORAGE_TUPLE_STREAM_H_
#define GAMMA_STORAGE_TUPLE_STREAM_H_

#include "storage/tuple.h"

namespace gammadb::storage {

class TupleStream {
 public:
  virtual ~TupleStream() = default;

  /// Produces the next tuple; returns false at end of stream.
  virtual bool Next(Tuple* out) = 0;
};

}  // namespace gammadb::storage

#endif  // GAMMA_STORAGE_TUPLE_STREAM_H_
