// Pull-based tuple stream interface (sorted-run merges, scans, ...).
#ifndef GAMMA_STORAGE_TUPLE_STREAM_H_
#define GAMMA_STORAGE_TUPLE_STREAM_H_

#include "common/status.h"
#include "storage/tuple.h"

namespace gammadb::storage {

class TupleStream {
 public:
  virtual ~TupleStream() = default;

  /// Produces the next tuple; returns false at end of stream or on
  /// error — check status() to tell the two apart.
  virtual bool Next(Tuple* out) = 0;

  /// OK unless the stream stopped on an I/O failure (e.g. a sorted-run
  /// page read exhausting its fault-injection retry budget).
  virtual Status status() const { return Status::OK(); }
};

}  // namespace gammadb::storage

#endif  // GAMMA_STORAGE_TUPLE_STREAM_H_
