// A serialized fixed-length tuple. The byte layout is defined by a
// Schema; Tuple is just an owning byte buffer that flows through scans,
// split tables, network exchanges and hash tables.
//
// Small-buffer optimized: tuples up to kInlineBytes (sized for the
// 208-byte Wisconsin tuple) live inside the Tuple object itself, so the
// scan -> split -> exchange -> insert hot path never touches the heap.
// Larger tuples (e.g. 416-byte join results) fall back to one heap
// allocation. Storage location is a pure function of size(), which is
// fixed at construction.
#ifndef GAMMA_STORAGE_TUPLE_H_
#define GAMMA_STORAGE_TUPLE_H_

#include <cstdint>
#include <cstring>
#include <string_view>

#include "storage/schema.h"

namespace gammadb::storage {

class Tuple {
 public:
  /// Largest tuple stored inline (no heap allocation).
  static constexpr uint32_t kInlineBytes = 208;

  Tuple() : size_(0) {}
  explicit Tuple(size_t bytes) : size_(static_cast<uint32_t>(bytes)) {
    uint8_t* p = Allocate();
    std::memset(p, 0, size_);
  }
  Tuple(const uint8_t* bytes, size_t n) : size_(static_cast<uint32_t>(n)) {
    std::memcpy(Allocate(), bytes, size_);
  }

  /// Replaces the contents with a copy of `bytes`. The block-granular
  /// exchange path uses this to materialize a scanned tuple directly
  /// inside its lane slot — one copy from the page image, with no
  /// intermediate Tuple object or move.
  void Assign(const uint8_t* bytes, size_t n) {
    Release();
    size_ = static_cast<uint32_t>(n);
    std::memcpy(Allocate(), bytes, size_);
  }

  Tuple(const Tuple& other) : size_(other.size_) {
    std::memcpy(Allocate(), other.data(), size_);
  }
  Tuple(Tuple&& other) noexcept : size_(other.size_) {
    if (size_ <= kInlineBytes) {
      std::memcpy(inline_, other.inline_, size_);
    } else {
      heap_ = other.heap_;
      other.size_ = 0;  // other must not free the stolen buffer
    }
  }
  Tuple& operator=(const Tuple& other) {
    if (this != &other) {
      Release();
      size_ = other.size_;
      std::memcpy(Allocate(), other.data(), size_);
    }
    return *this;
  }
  Tuple& operator=(Tuple&& other) noexcept {
    if (this != &other) {
      Release();
      size_ = other.size_;
      if (size_ <= kInlineBytes) {
        std::memcpy(inline_, other.inline_, size_);
      } else {
        heap_ = other.heap_;
        other.size_ = 0;
      }
    }
    return *this;
  }
  ~Tuple() { Release(); }

  uint8_t* data() { return size_ <= kInlineBytes ? inline_ : heap_; }
  const uint8_t* data() const {
    return size_ <= kInlineBytes ? inline_ : heap_;
  }
  uint32_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Schema-mediated convenience accessors.
  int32_t GetInt32(const Schema& s, size_t field) const {
    return s.GetInt32(data(), field);
  }
  void SetInt32(const Schema& s, size_t field, int32_t v) {
    s.SetInt32(data(), field, v);
  }
  std::string_view GetChars(const Schema& s, size_t field) const {
    return s.GetChars(data(), field);
  }
  void SetChars(const Schema& s, size_t field, std::string_view v) {
    s.SetChars(data(), field, v);
  }

  bool operator==(const Tuple& other) const {
    return size_ == other.size_ &&
           std::memcmp(data(), other.data(), size_) == 0;
  }

  /// Byte-wise concatenation (join result composition).
  static Tuple Concat(const Tuple& a, const Tuple& b) {
    return Concat(a, b.data(), b.size());
  }

  /// Concatenation with a raw serialized record on the right — the
  /// zero-copy probe path composes results directly from the page view
  /// without materializing the probe tuple first.
  static Tuple Concat(const Tuple& a, const uint8_t* b, uint32_t b_size) {
    Tuple out;
    out.size_ = a.size_ + b_size;
    uint8_t* p = out.Allocate();
    std::memcpy(p, a.data(), a.size_);
    std::memcpy(p + a.size_, b, b_size);
    return out;
  }

 private:
  /// Provides storage for size_ bytes (uninitialized) and returns it.
  uint8_t* Allocate() {
    if (size_ <= kInlineBytes) return inline_;
    heap_ = new uint8_t[size_];
    return heap_;
  }
  void Release() {
    if (size_ > kInlineBytes) delete[] heap_;
  }

  uint32_t size_;
  union {
    uint8_t inline_[kInlineBytes];
    uint8_t* heap_;
  };
};

}  // namespace gammadb::storage

#endif  // GAMMA_STORAGE_TUPLE_H_
