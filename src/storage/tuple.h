// A serialized fixed-length tuple. The byte layout is defined by a
// Schema; Tuple is just an owning byte buffer that flows through scans,
// split tables, network exchanges and hash tables.
#ifndef GAMMA_STORAGE_TUPLE_H_
#define GAMMA_STORAGE_TUPLE_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "storage/schema.h"

namespace gammadb::storage {

class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(size_t bytes) : data_(bytes, 0) {}
  Tuple(const uint8_t* bytes, size_t n) : data_(bytes, bytes + n) {}

  uint8_t* data() { return data_.data(); }
  const uint8_t* data() const { return data_.data(); }
  uint32_t size() const { return static_cast<uint32_t>(data_.size()); }
  bool empty() const { return data_.empty(); }

  // Schema-mediated convenience accessors.
  int32_t GetInt32(const Schema& s, size_t field) const {
    return s.GetInt32(data_.data(), field);
  }
  void SetInt32(const Schema& s, size_t field, int32_t v) {
    s.SetInt32(data_.data(), field, v);
  }
  std::string_view GetChars(const Schema& s, size_t field) const {
    return s.GetChars(data_.data(), field);
  }
  void SetChars(const Schema& s, size_t field, std::string_view v) {
    s.SetChars(data_.data(), field, v);
  }

  bool operator==(const Tuple& other) const { return data_ == other.data_; }

  /// Byte-wise concatenation (join result composition).
  static Tuple Concat(const Tuple& a, const Tuple& b) {
    Tuple out(a.size() + static_cast<size_t>(b.size()));
    std::memcpy(out.data(), a.data(), a.size());
    std::memcpy(out.data() + a.size(), b.data(), b.size());
    return out;
  }

 private:
  std::vector<uint8_t> data_;
};

}  // namespace gammadb::storage

#endif  // GAMMA_STORAGE_TUPLE_H_
