// 8 KB page codec for fixed-length records.
//
// Layout: a 4-byte header (uint16 record count, 2 bytes reserved)
// followed by densely packed fixed-length records. All heap files, temp
// files and sort runs use this layout; B+-tree nodes use their own (see
// storage/btree.h).
#ifndef GAMMA_STORAGE_PAGE_H_
#define GAMMA_STORAGE_PAGE_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/logging.h"

namespace gammadb::storage {

inline constexpr uint32_t kPageHeaderBytes = 4;

/// Records of `record_bytes` that fit on a page of `page_bytes`.
inline uint32_t PageCapacity(uint32_t page_bytes, uint32_t record_bytes) {
  GAMMA_CHECK_GT(record_bytes, 0u);
  GAMMA_CHECK_GT(page_bytes, kPageHeaderBytes + record_bytes)
      << "record larger than page";
  return (page_bytes - kPageHeaderBytes) / record_bytes;
}

/// An in-memory page image being filled with records before it is
/// written to a simulated disk.
class PageWriter {
 public:
  PageWriter(uint32_t page_bytes, uint32_t record_bytes)
      : record_bytes_(record_bytes),
        capacity_(PageCapacity(page_bytes, record_bytes)),
        buf_(page_bytes, 0) {}

  bool Full() const { return count_ >= capacity_; }
  uint16_t count() const { return count_; }
  uint32_t capacity() const { return capacity_; }

  /// Appends one record; requires !Full().
  void Append(const uint8_t* record) {
    GAMMA_DCHECK(!Full());
    std::memcpy(buf_.data() + kPageHeaderBytes +
                    static_cast<size_t>(count_) * record_bytes_,
                record, record_bytes_);
    ++count_;
  }

  /// Finalizes the header and returns the page image.
  const uint8_t* Finish() {
    std::memcpy(buf_.data(), &count_, sizeof(count_));
    return buf_.data();
  }

  /// Clears the page for reuse.
  void Reset() {
    count_ = 0;
    std::memset(buf_.data(), 0, buf_.size());
  }

 private:
  uint32_t record_bytes_;
  uint32_t capacity_;
  uint16_t count_ = 0;
  std::vector<uint8_t> buf_;
};

/// Read-side view over a page image.
class PageReader {
 public:
  PageReader(const uint8_t* page, uint32_t record_bytes)
      : page_(page), record_bytes_(record_bytes) {
    std::memcpy(&count_, page, sizeof(count_));
  }

  uint16_t count() const { return count_; }

  const uint8_t* Record(uint16_t i) const {
    GAMMA_DCHECK(i < count_);
    return page_ + kPageHeaderBytes + static_cast<size_t>(i) * record_bytes_;
  }

 private:
  const uint8_t* page_;
  uint32_t record_bytes_;
  uint16_t count_;
};

}  // namespace gammadb::storage

#endif  // GAMMA_STORAGE_PAGE_H_
