// Page-based B+-tree index: the "B+ indices" service of WiSS (paper
// Section 2.2).
//
// Keys are int32 attribute values (duplicates allowed); values are
// opaque 64-bit payloads (record ids). Nodes are real page images on a
// simulated disk; every node touched by a lookup or split is charged as
// a random page access (no buffer-pool caching is modeled — the paper's
// join experiments never go through an index, so the tree serves as a
// substrate-completeness service exercised by tests and examples).
#ifndef GAMMA_STORAGE_BTREE_H_
#define GAMMA_STORAGE_BTREE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/status.h"
#include "sim/node.h"

namespace gammadb::storage {

class BPlusTree {
 public:
  /// `node` must own a disk.
  explicit BPlusTree(sim::Node* node);
  /// Returns every node page to the disk.
  ~BPlusTree();

  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;

  /// Inserts a (key, value) entry. Duplicate keys are allowed.
  void Insert(int32_t key, uint64_t value);

  /// All values stored under `key` (possibly empty).
  std::vector<uint64_t> Search(int32_t key) const;

  /// All (key, value) entries with lo <= key <= hi, in key order.
  std::vector<std::pair<int32_t, uint64_t>> RangeScan(int32_t lo,
                                                      int32_t hi) const;

  size_t size() const { return size_; }
  int height() const { return height_; }

  /// Walks the whole tree checking structural invariants (ordering,
  /// separator correctness, leaf chaining). CHECK-fails on violation.
  void ValidateInvariants() const;

 private:
  struct SplitResult {
    int32_t separator;
    sim::PageId right;
  };

  sim::PageId NewLeaf();
  sim::PageId NewInternal();
  std::optional<SplitResult> InsertRecursive(sim::PageId page, int32_t key,
                                             uint64_t value);
  sim::PageId FindLeaf(int32_t key) const;

  sim::Node* node_;
  sim::PageId root_;
  size_t size_ = 0;
  int height_ = 1;
  std::vector<sim::PageId> allocated_pages_;
};

}  // namespace gammadb::storage

#endif  // GAMMA_STORAGE_BTREE_H_
