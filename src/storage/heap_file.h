// Heap files: sequences of fixed-length-record pages on one simulated
// disk (WiSS "structured sequential files").
//
// A heap file is always local to the node that owns the disk it lives
// on; appends buffer into an in-memory page image and flush whole pages
// (per-file output buffering, which is why bucket-forming writes many
// fragment files without paying random-I/O costs — Gamma buffered each
// output file separately).
#ifndef GAMMA_STORAGE_HEAP_FILE_H_
#define GAMMA_STORAGE_HEAP_FILE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "sim/node.h"
#include "storage/page.h"
#include "storage/schema.h"
#include "storage/tuple.h"
#include "storage/tuple_block.h"

namespace gammadb::storage {

class HeapFile {
 public:
  /// `node` must own a disk; all I/O and tuple-move CPU is charged to it.
  HeapFile(sim::Node* node, const Schema* schema, std::string name = "");
  ~HeapFile();

  HeapFile(const HeapFile&) = delete;
  HeapFile& operator=(const HeapFile&) = delete;
  HeapFile(HeapFile&&) = default;
  HeapFile& operator=(HeapFile&&) = default;

  const Schema& schema() const { return *schema_; }
  const std::string& name() const { return name_; }
  sim::Node* node() const { return node_; }

  /// Buffers one tuple (charges tuple-copy CPU); flushes a full page to
  /// disk as a sequential write. Fails (Status::Unavailable) when the
  /// page write exhausts the disk's retry budget; the page's tuples stay
  /// buffered in the writer, so a later Append or FlushAppends retries.
  Status Append(const Tuple& tuple);

  /// Same as Append but takes the serialized record bytes directly
  /// (exactly schema().tuple_bytes() of them) — the zero-copy exchange
  /// drains page views into bucket/overflow files without materializing
  /// an intermediate Tuple. Charges identically to Append.
  Status AppendRecord(const uint8_t* record);

  /// Flushes a trailing partial page, if any. Idempotent. Must be called
  /// before scanning.
  Status FlushAppends();

  size_t tuple_count() const { return tuple_count_; }
  size_t page_count() const { return pages_.size(); }
  /// Total serialized bytes of the stored tuples.
  uint64_t data_bytes() const {
    return static_cast<uint64_t>(tuple_count_) * schema_->tuple_bytes();
  }

  /// Releases all pages back to the disk and empties the file.
  void Free();

  /// Sequential reader. Reading charges page I/O and per-tuple CPU; a
  /// scanner abandoned early never charges for the pages it did not
  /// reach (this is how sort-merge's early merge termination saves I/O
  /// on skewed data).
  class Scanner {
   public:
    explicit Scanner(const HeapFile* file);

    /// Advances to the next tuple; returns false at end of file OR on an
    /// I/O error — check status() to tell the two apart.
    bool Next(Tuple* out);

    /// Fills `block` with views of the remaining tuples of the current
    /// page (loading the next page first when it is exhausted), at most
    /// TupleBlock::kCapacity. Charges page I/O only — the per-tuple
    /// read CPU that Next() charges is charged by the CONSUMER as it
    /// processes each view, which keeps the per-tuple charge order
    /// (read, predicate, route, ...) of the scalar path intact.
    ///
    /// Views point DIRECTLY at the simulated disk's page bytes (the
    /// scanner never copies a page), so they stay valid until the
    /// file's pages are freed — not merely until the next NextBlock()
    /// call. The zero-copy exchange relies on this: routed views are
    /// drained by consumers a full phase round after the scan produced
    /// them. Returns false at end of file OR on an I/O error — check
    /// status().
    bool NextBlock(TupleBlock* block);

    /// OK while the scan is healthy; the page-read failure that stopped
    /// the scan otherwise.
    const Status& status() const { return status_; }

    /// Pages actually read so far.
    size_t pages_read() const { return pages_read_; }

   private:
    bool LoadNextPage();

    const HeapFile* file_;
    const uint8_t* page_data_ = nullptr;  // current page, disk-resident
    Status status_;
    size_t next_page_ = 0;
    uint16_t page_tuples_ = 0;
    uint16_t next_slot_ = 0;
    size_t pages_read_ = 0;
  };

  Scanner Scan() const { return Scanner(this); }

  /// Reads every tuple WITHOUT charging any simulated cost. For tests
  /// and result verification only.
  std::vector<Tuple> PeekAll() const;

  /// What an UpdateInPlace callback decided about one record.
  enum class UpdateAction { kKeep, kUpdated, kDelete };

  /// Page-wise read-modify-write over the whole file: every page is
  /// read (sequential), `fn` may mutate each record in place or delete
  /// it, and only MODIFIED pages are written back (WiSS-style in-place
  /// update). Deleted records are compacted within their page; empty
  /// pages remain allocated. Returns the number of updated + deleted
  /// records. Must not be called with unflushed appends.
  ///
  /// NOTE: DML and index access paths (UpdateInPlace, FetchByRid,
  /// ForEachRid) are outside the fault-injection recovery scope
  /// (docs/fault_injection.md): an injected I/O error here aborts the
  /// process via GAMMA_CHECK_OK rather than propagating.
  size_t UpdateInPlace(const std::function<UpdateAction(uint8_t*)>& fn);

  /// Record identifier for index entries: (page ordinal, slot).
  static uint64_t MakeRid(size_t page_index, uint16_t slot) {
    return (static_cast<uint64_t>(page_index) << 16) | slot;
  }

  /// Fetches one record by rid, charging a RANDOM page read (the
  /// unclustered-index access path). A one-page cache makes consecutive
  /// fetches from the same page free, as WiSS's buffer would.
  Tuple FetchByRid(uint64_t rid) const;

  /// Invokes `fn(rid, record)` for every record, charging a sequential
  /// scan (used to bulk-build indices).
  void ForEachRid(
      const std::function<void(uint64_t, const uint8_t*)>& fn) const;

 private:
  friend class Scanner;

  /// Writes the writer's current page image to a fresh disk page. On
  /// failure the image stays buffered (the retry path of Append /
  /// FlushAppends).
  Status WritePendingPage();

  sim::Node* node_;
  const Schema* schema_;
  std::string name_;
  std::vector<sim::PageId> pages_;
  size_t tuple_count_ = 0;
  std::unique_ptr<PageWriter> writer_;  // pending partial page

  // One-page fetch cache for FetchByRid.
  mutable std::vector<uint8_t> fetch_buf_;
  mutable size_t fetch_buf_page_ = SIZE_MAX;
};

}  // namespace gammadb::storage

#endif  // GAMMA_STORAGE_HEAP_FILE_H_
