// External merge sort: the WiSS "sort utility" used by the parallel
// sort-merge join (paper Section 3.1).
//
// Run formation fills a memory buffer of `memory_pages` pages, sorts it
// (comparison costs are charged from actual comparator invocations) and
// spills a sorted run to disk. If everything fits in the buffer the sort
// stays in memory and no run I/O is paid. Intermediate merge passes run
// with fan-in = memory_pages - 1 (one output buffer) until the remaining
// runs can be merged in a single pass; that final merge is *streamed* to
// the consumer (the merge join), which both saves the last write+read
// pass and lets a consumer that stops early (skewed inner exhausted)
// avoid reading the tail of the data — the effect behind sort-merge's
// surprising NU speedup in Table 3 of the paper.
//
// The number of merge passes grows stepwise as memory shrinks, which is
// exactly the staircase in the paper's sort-merge response-time curves.
#ifndef GAMMA_STORAGE_EXTERNAL_SORT_H_
#define GAMMA_STORAGE_EXTERNAL_SORT_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "sim/node.h"
#include "storage/heap_file.h"
#include "storage/tuple_stream.h"

namespace gammadb::storage {

class ExternalSort {
 public:
  /// Sorts ascending by the int32 field `key_field`. `memory_pages` is
  /// the sort/merge workspace (>= 3: one output + two input buffers).
  ExternalSort(sim::Node* node, const Schema* schema, int key_field,
               uint32_t memory_pages);
  ~ExternalSort();

  ExternalSort(const ExternalSort&) = delete;
  ExternalSort& operator=(const ExternalSort&) = delete;

  /// Adds one tuple to the sort input (spills a run when the buffer
  /// fills). Fails when a run write exhausts the disk retry budget.
  Status Add(const Tuple& tuple);

  /// Reads an entire heap file into the sort (scan costs are charged).
  /// Fails on a scan read error or a spill write error.
  Status AddFile(const HeapFile& file);

  /// Ends input: sorts the tail, then performs intermediate merge passes
  /// until the remainder is single-pass mergeable. Must be called before
  /// OpenStream(). Fails on run I/O errors.
  Status FinishInput();

  /// Sorted output stream (single final merge or in-memory). May only be
  /// called once.
  std::unique_ptr<TupleStream> OpenStream();

  /// Effective full passes over the data performed by intermediate
  /// merging (total intermediately merged tuples / input tuples,
  /// rounded up; 0 when the initial runs were already single-pass
  /// mergeable).
  int intermediate_passes() const;
  /// Tuples that flowed through intermediate merge steps.
  uint64_t intermediate_merged_tuples() const {
    return intermediate_merged_tuples_;
  }
  /// Sorted runs on disk after FinishInput (0 for an in-memory sort).
  size_t run_count() const { return runs_.size(); }
  size_t tuple_count() const { return tuple_count_; }

 private:
  void SortBuffer();
  Status SpillRun();
  /// Merges `group` into `out` (a fresh run); frees the inputs on
  /// success.
  Status MergeGroupInto(std::vector<HeapFile>&& group, HeapFile* out);

  sim::Node* node_;
  const Schema* schema_;
  int key_field_;
  uint32_t memory_pages_;
  size_t buffer_capacity_tuples_;

  std::vector<Tuple> buffer_;
  std::vector<HeapFile> runs_;
  size_t tuple_count_ = 0;
  uint64_t intermediate_merged_tuples_ = 0;
  bool finished_ = false;
  bool streamed_ = false;
};

}  // namespace gammadb::storage

#endif  // GAMMA_STORAGE_EXTERNAL_SORT_H_
