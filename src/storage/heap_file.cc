#include "storage/heap_file.h"

#include "common/logging.h"

namespace gammadb::storage {

HeapFile::HeapFile(sim::Node* node, const Schema* schema, std::string name)
    : node_(node), schema_(schema), name_(std::move(name)) {
  GAMMA_CHECK(node_->has_disk()) << "heap file requires a disk node";
}

HeapFile::~HeapFile() {
  // Pages are intentionally NOT freed automatically: permanent relations
  // outlive query objects. Temp files are freed explicitly via Free().
}

Status HeapFile::WritePendingPage() {
  const sim::PageId id = node_->disk().AllocatePage();
  const Status write = node_->disk().WritePage(id, writer_->Finish(),
                                               sim::AccessPattern::kSequential);
  if (!write.ok()) {
    // The page's tuples stay buffered in the writer; tuple_count_
    // already counts them, so the file is consistent and the next
    // Append/FlushAppends retries the write.
    node_->disk().FreePage(id);
    return write;
  }
  pages_.push_back(id);
  writer_->Reset();
  return Status::OK();
}

Status HeapFile::Append(const Tuple& tuple) {
  GAMMA_DCHECK(tuple.size() == schema_->tuple_bytes());
  return AppendRecord(tuple.data());
}

Status HeapFile::AppendRecord(const uint8_t* record) {
  if (writer_ == nullptr) {
    writer_ = std::make_unique<PageWriter>(node_->cost().page_bytes,
                                           schema_->tuple_bytes());
  }
  if (writer_->Full()) {
    // A previous full-page write failed; retry before accepting more.
    GAMMA_RETURN_IF_ERROR(WritePendingPage());
  }
  node_->ChargeCpu(node_->cost().cpu_write_tuple_seconds,
                   sim::CostCategory::kWriteTuple);
  writer_->Append(record);
  ++tuple_count_;
  if (writer_->Full()) {
    GAMMA_RETURN_IF_ERROR(WritePendingPage());
  }
  return Status::OK();
}

Status HeapFile::FlushAppends() {
  if (writer_ != nullptr && writer_->count() > 0) {
    GAMMA_RETURN_IF_ERROR(WritePendingPage());
  }
  writer_.reset();
  return Status::OK();
}

void HeapFile::Free() {
  for (sim::PageId id : pages_) node_->disk().FreePage(id);
  pages_.clear();
  tuple_count_ = 0;
  writer_.reset();
  fetch_buf_page_ = SIZE_MAX;
}

HeapFile::Scanner::Scanner(const HeapFile* file) : file_(file) {
  GAMMA_CHECK(file_->writer_ == nullptr || file_->writer_->count() == 0)
      << "scan of heap file '" << file_->name_ << "' with unflushed appends";
}

bool HeapFile::Scanner::LoadNextPage() {
  if (!status_.ok()) return false;
  if (next_page_ >= file_->pages_.size()) return false;
  status_ = file_->node_->disk().ReadPageRef(
      file_->pages_[next_page_], &page_data_,
      sim::AccessPattern::kSequential);
  if (!status_.ok()) return false;
  ++next_page_;
  ++pages_read_;
  PageReader reader(page_data_, file_->schema_->tuple_bytes());
  page_tuples_ = reader.count();
  next_slot_ = 0;
  return true;
}

bool HeapFile::Scanner::Next(Tuple* out) {
  while (next_slot_ >= page_tuples_) {
    if (!LoadNextPage()) return false;
  }
  PageReader reader(page_data_, file_->schema_->tuple_bytes());
  const uint8_t* rec = reader.Record(next_slot_);
  ++next_slot_;
  file_->node_->ChargeCpu(file_->node_->cost().cpu_read_tuple_seconds,
                          sim::CostCategory::kReadTuple);
  *out = Tuple(rec, file_->schema_->tuple_bytes());
  return true;
}

bool HeapFile::Scanner::NextBlock(TupleBlock* block) {
  block->clear();
  while (next_slot_ >= page_tuples_) {
    if (!LoadNextPage()) return false;
  }
  const uint32_t record_bytes = file_->schema_->tuple_bytes();
  PageReader reader(page_data_, record_bytes);
  while (next_slot_ < page_tuples_ && !block->full()) {
    block->push_back(TupleView{reader.Record(next_slot_), record_bytes});
    ++next_slot_;
  }
  return true;
}

size_t HeapFile::UpdateInPlace(const std::function<UpdateAction(uint8_t*)>& fn) {
  GAMMA_CHECK(writer_ == nullptr || writer_->count() == 0)
      << "UpdateInPlace on '" << name_ << "' with unflushed appends";
  const uint32_t record_bytes = schema_->tuple_bytes();
  const uint32_t page_bytes = node_->cost().page_bytes;
  std::vector<uint8_t> page(page_bytes);
  size_t touched = 0;
  for (sim::PageId id : pages_) {
    // DML paths are outside the fault-injection recovery scope
    // (docs/fault_injection.md): a hard injected I/O error here aborts.
    GAMMA_CHECK_OK(
        node_->disk().ReadPage(id, page.data(), sim::AccessPattern::kSequential));
    PageReader reader(page.data(), record_bytes);
    PageWriter rebuilt(page_bytes, record_bytes);
    bool modified = false;
    for (uint16_t slot = 0; slot < reader.count(); ++slot) {
      // Mutable access into our local page image.
      uint8_t* record = page.data() + kPageHeaderBytes +
                        static_cast<size_t>(slot) * record_bytes;
      node_->ChargeCpu(node_->cost().cpu_read_tuple_seconds,
                       sim::CostCategory::kReadTuple);
      switch (fn(record)) {
        case UpdateAction::kKeep:
          rebuilt.Append(record);
          break;
        case UpdateAction::kUpdated:
          node_->ChargeCpu(node_->cost().cpu_write_tuple_seconds,
                           sim::CostCategory::kWriteTuple);
          rebuilt.Append(record);
          ++touched;
          modified = true;
          break;
        case UpdateAction::kDelete:
          ++touched;
          --tuple_count_;
          modified = true;
          break;
      }
    }
    if (modified) {
      GAMMA_CHECK_OK(node_->disk().WritePage(id, rebuilt.Finish(),
                                             sim::AccessPattern::kSequential));
    }
  }
  fetch_buf_page_ = SIZE_MAX;  // cached page may be stale
  return touched;
}

Tuple HeapFile::FetchByRid(uint64_t rid) const {
  const size_t page_index = static_cast<size_t>(rid >> 16);
  const uint16_t slot = static_cast<uint16_t>(rid & 0xFFFF);
  GAMMA_CHECK_LT(page_index, pages_.size());
  if (fetch_buf_page_ != page_index) {
    fetch_buf_.resize(node_->cost().page_bytes);
    // Index access paths are outside the fault-injection recovery scope.
    GAMMA_CHECK_OK(node_->disk().ReadPage(pages_[page_index], fetch_buf_.data(),
                                          sim::AccessPattern::kRandom));
    fetch_buf_page_ = page_index;
  }
  PageReader reader(fetch_buf_.data(), schema_->tuple_bytes());
  GAMMA_CHECK_LT(slot, reader.count());
  node_->ChargeCpu(node_->cost().cpu_read_tuple_seconds,
                   sim::CostCategory::kReadTuple);
  return Tuple(reader.Record(slot), schema_->tuple_bytes());
}

void HeapFile::ForEachRid(
    const std::function<void(uint64_t, const uint8_t*)>& fn) const {
  GAMMA_CHECK(writer_ == nullptr || writer_->count() == 0)
      << "ForEachRid with unflushed appends";
  std::vector<uint8_t> page(node_->cost().page_bytes);
  for (size_t page_index = 0; page_index < pages_.size(); ++page_index) {
    // Index bulk-build is outside the fault-injection recovery scope.
    GAMMA_CHECK_OK(node_->disk().ReadPage(pages_[page_index], page.data(),
                                          sim::AccessPattern::kSequential));
    PageReader reader(page.data(), schema_->tuple_bytes());
    for (uint16_t slot = 0; slot < reader.count(); ++slot) {
      node_->ChargeCpu(node_->cost().cpu_read_tuple_seconds,
                       sim::CostCategory::kReadTuple);
      fn(MakeRid(page_index, slot), reader.Record(slot));
    }
  }
}

std::vector<Tuple> HeapFile::PeekAll() const {
  std::vector<Tuple> out;
  out.reserve(tuple_count_);
  const uint32_t record_bytes = schema_->tuple_bytes();
  for (sim::PageId id : pages_) {
    PageReader reader(node_->disk().PeekPage(id), record_bytes);
    for (uint16_t i = 0; i < reader.count(); ++i) {
      out.emplace_back(reader.Record(i), record_bytes);
    }
  }
  return out;
}

}  // namespace gammadb::storage
