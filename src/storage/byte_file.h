// Byte-stream files "as in UNIX" — one of the WiSS file services the
// paper lists (Section 2.2), used for unstructured data (long data
// items are byte files with external references). Offers positioned
// reads and appends over page-granular simulated storage.
#ifndef GAMMA_STORAGE_BYTE_FILE_H_
#define GAMMA_STORAGE_BYTE_FILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "sim/node.h"

namespace gammadb::storage {

class ByteFile {
 public:
  /// `node` must own a disk; all I/O is charged to it.
  ByteFile(sim::Node* node, std::string name = "");

  ByteFile(const ByteFile&) = delete;
  ByteFile& operator=(const ByteFile&) = delete;

  /// Appends `n` bytes to the end of the file. Whole pages are written
  /// as they fill; call FlushAppends() to persist a trailing partial
  /// page before reading it back. Fails (Status::Unavailable) when a
  /// page write exhausts the disk's retry budget; the failed page's
  /// bytes stay buffered in the tail, so the file remains consistent.
  Status Append(const uint8_t* data, size_t n);
  Status FlushAppends();

  /// Reads `n` bytes starting at `offset` into `out`. Charges one page
  /// read per touched page (random access unless the read continues
  /// where the previous one ended).
  Status ReadAt(uint64_t offset, size_t n, uint8_t* out) const;

  uint64_t size() const { return size_; }
  size_t page_count() const { return pages_.size(); }

  /// Releases all pages.
  void Free();

 private:
  uint32_t page_bytes() const { return node_->cost().page_bytes; }

  sim::Node* node_;
  std::string name_;
  std::vector<sim::PageId> pages_;
  uint64_t size_ = 0;
  std::vector<uint8_t> tail_;  // trailing partial page contents
  /// True when pages_.back() is an on-disk snapshot of the tail; a
  /// subsequent Append retracts it.
  bool tail_flushed_ = false;
  mutable uint64_t last_read_end_ = UINT64_MAX;  // sequentiality hint
};

}  // namespace gammadb::storage

#endif  // GAMMA_STORAGE_BYTE_FILE_H_
