// TupleBlock: a fixed-capacity batch of tuple references with a
// parallel hash-value array — the unit of the block-granular
// scan -> split -> exchange pipeline (docs/performance.md).
//
// A block holds VIEWS into a scanner's current page image, not owning
// copies: the hot path materializes each tuple exactly once, directly
// inside its destination (an exchange lane slot, a sort buffer, a hash
// table arena). Views are valid only until the producing scanner
// advances to its next page, so blocks must be consumed before the next
// NextBlock()/Next() call.
//
// The parallel `hashes` array is filled by the consumer (the split
// router computes join-attribute hashes for a whole block before the
// charge pass; see join/hash_engine.cc). Batching NEVER changes the
// simulated cost model's charge order — all ChargeCpu calls stay in the
// scalar per-tuple order; only uncharged mechanics (copies, hashing
// arithmetic, lane appends) are reorganized around the block.
#ifndef GAMMA_STORAGE_TUPLE_BLOCK_H_
#define GAMMA_STORAGE_TUPLE_BLOCK_H_

#include <array>
#include <cstddef>
#include <cstdint>

#include "common/logging.h"
#include "storage/tuple.h"

namespace gammadb::storage {

/// A non-owning reference to one serialized tuple (typically a record
/// inside a heap-file page image).
struct TupleView {
  const uint8_t* data;
  uint32_t size;

  Tuple ToTuple() const { return Tuple(data, size); }
};

class TupleBlock {
 public:
  /// Fixed capacity; a scan block never spans a page boundary, so the
  /// effective fill is min(kCapacity, tuples left in the page).
  static constexpr size_t kCapacity = 256;

  size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }
  bool full() const { return count_ == kCapacity; }
  void clear() { count_ = 0; }

  void push_back(TupleView view) {
    GAMMA_DCHECK(count_ < kCapacity);
    views_[count_++] = view;
  }

  const TupleView& view(size_t i) const {
    GAMMA_DCHECK(i < count_);
    return views_[i];
  }

  uint64_t hash(size_t i) const {
    GAMMA_DCHECK(i < count_);
    return hashes_[i];
  }
  void set_hash(size_t i, uint64_t h) {
    GAMMA_DCHECK(i < count_);
    hashes_[i] = h;
  }
  /// Raw access to the parallel hash array (batched routing).
  uint64_t* hashes() { return hashes_.data(); }
  const uint64_t* hashes() const { return hashes_.data(); }

 private:
  std::array<TupleView, kCapacity> views_;
  std::array<uint64_t, kCapacity> hashes_;
  size_t count_ = 0;
};

}  // namespace gammadb::storage

#endif  // GAMMA_STORAGE_TUPLE_BLOCK_H_
