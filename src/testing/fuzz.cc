#include "testing/fuzz.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <sstream>
#include <vector>

#include "common/hash.h"
#include "common/random.h"
#include "common/strings.h"
#include "gamma/catalog.h"
#include "gamma/loader.h"
#include "join/driver.h"
#include "sim/fault.h"
#include "sim/machine.h"
#include "storage/schema.h"
#include "storage/tuple.h"
#include "testing/oracle.h"

namespace gammadb::testing {

namespace {

constexpr int kNumDiskNodes = 4;
constexpr int kNumRemoteNodes = 4;

storage::Schema InnerSchema() {
  return storage::Schema({storage::Field::Int32("key"),
                          storage::Field::Int32("val"),
                          storage::Field::Char("tag", 12)});
}

storage::Schema OuterSchema() {
  return storage::Schema({storage::Field::Int32("key"),
                          storage::Field::Int32("val"),
                          storage::Field::Char("pad", 20)});
}

/// Keys over [0, domain): Zipf(theta) when theta > 0 (key 0 hottest),
/// uniform otherwise. Same construction as the skew tests use, local so
/// src/testing stays independent of tests/.
std::vector<int32_t> DrawKeys(size_t n, uint32_t domain, double theta,
                              Rng& rng) {
  std::vector<int32_t> keys(n);
  if (theta <= 0 || domain <= 1) {
    for (auto& k : keys) k = static_cast<int32_t>(rng.Uniform(domain));
    return keys;
  }
  std::vector<double> cdf(domain);
  double total = 0;
  for (uint32_t r = 0; r < domain; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r) + 1.0, theta);
    cdf[r] = total;
  }
  for (double& c : cdf) c /= total;
  for (auto& k : keys) {
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), rng.NextDouble());
    k = static_cast<int32_t>(std::min<size_t>(
        static_cast<size_t>(it - cdf.begin()), domain - 1));
  }
  return keys;
}

std::vector<storage::Tuple> MakeTuples(const storage::Schema& schema,
                                       size_t n, uint32_t domain, double theta,
                                       Rng& rng) {
  const std::vector<int32_t> keys = DrawKeys(n, domain, theta, rng);
  std::vector<storage::Tuple> tuples;
  tuples.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    storage::Tuple t(schema.tuple_bytes());
    t.SetInt32(schema, 0, keys[i]);
    t.SetInt32(schema, 1, static_cast<int32_t>(rng.Uniform(100)));
    char text[5];
    for (char& c : text) c = static_cast<char>('a' + rng.Uniform(26));
    t.SetChars(schema, 2, std::string_view(text, sizeof(text)));
    tuples.push_back(std::move(t));
  }
  return tuples;
}

Status LoadFuzzRelation(db::StoredRelation* rel,
                        const std::vector<storage::Tuple>& tuples, bool hpja) {
  db::LoadOptions options;
  options.strategy =
      hpja ? db::PartitionStrategy::kHashed : db::PartitionStrategy::kRoundRobin;
  options.partition_field = 0;
  options.hash_seed = kDefaultHashSeed;
  return db::LoadRelation(rel, tuples, options);
}

/// Largest duplicate group of the inner join key. Overflow resolution
/// re-hashes a too-big partition with changed hash functions, which can
/// never split duplicates of one key; the nested-loop fallback
/// (docs/overflow.md) now absorbs that case, so the generator only
/// floors the budget at the driver's validity minimum — unless the
/// legacy_floor compatibility flag asks for the old multiplicity floor.
uint32_t MaxKeyMultiplicity(const std::vector<storage::Tuple>& tuples,
                            const storage::Schema& schema) {
  std::map<int32_t, uint32_t> counts;
  uint32_t max_count = 0;
  for (const storage::Tuple& t : tuples) {
    max_count = std::max(max_count, ++counts[t.GetInt32(schema, 0)]);
  }
  return max_count;
}

join::JoinSpec BuildSpec(const FuzzConfig& config, const sim::Machine& machine,
                         uint64_t inner_bytes, uint32_t inner_tuple_bytes,
                         uint32_t inner_max_dup) {
  join::JoinSpec spec;
  spec.inner_relation = "R";
  spec.outer_relation = "S";
  spec.inner_field = 0;
  spec.outer_field = 0;
  spec.algorithm = config.algorithm;
  if (config.remote && config.algorithm != join::Algorithm::kSortMerge) {
    spec.join_nodes = machine.DisklessNodeIds();
  }
  const uint64_t join_procs =
      spec.join_nodes.empty() ? static_cast<uint64_t>(kNumDiskNodes)
                              : spec.join_nodes.size();
  // Absolute budget (the ratio path divides by |R|, which may be 0
  // here), floored so every generated plan is valid: at least one tuple
  // per join process (driver check). The overflow path is total
  // (docs/overflow.md), so budgets below the biggest duplicate group
  // are fair game — they drive deep recursion into the nested-loop
  // fallback and still terminate. legacy_floor restores the old
  // multiplicity floor for before/after campaign comparisons.
  uint64_t floor_bytes = join_procs * inner_tuple_bytes;
  if (config.legacy_floor) {
    floor_bytes *= std::max<uint32_t>(1, inner_max_dup);
  }
  spec.memory_bytes = std::max<uint64_t>(
      floor_bytes,
      inner_bytes * static_cast<uint64_t>(config.memory_pct) / 100);
  if (config.zero_slack) spec.memory_slack = 0.0;
  spec.max_overflow_levels = config.max_levels;
  spec.use_bit_filters = config.bit_filters;
  spec.use_forming_bit_filters = config.bit_filters && config.forming_bit_filters;
  spec.adaptive_repartition = config.adaptive_repartition;
  if (config.sel_pct < 100) {
    // The `val` field is uniform over [0, 100), so `val < sel_pct`
    // keeps ~sel_pct% of either relation.
    const db::Predicate keep{1, db::Predicate::Op::kLt,
                             static_cast<int32_t>(config.sel_pct)};
    spec.inner_predicate = {keep};
    spec.outer_predicate = {keep};
  }
  spec.result_name = "fuzz_result";
  spec.capture_results = true;
  return spec;
}

bool InjectedMismatch(const FuzzConfig& config) {
  return config.inject_mismatch && config.bit_filters &&
         config.inner_tuples >= 2 && config.outer_tuples >= 32;
}

template <typename T>
T PickFrom(Rng& rng, std::initializer_list<T> values) {
  const auto* begin = values.begin();
  return begin[rng.Uniform(values.size())];
}

}  // namespace

Result<FuzzRunResult> RunFuzzConfig(const FuzzConfig& config) {
  sim::MachineConfig mc;
  mc.num_disk_nodes = kNumDiskNodes;
  mc.num_diskless_nodes = config.remote ? kNumRemoteNodes : 0;
  mc.num_threads = config.threads;
  sim::Machine machine(mc);
  db::Catalog catalog;

  const storage::Schema r_schema = InnerSchema();
  const storage::Schema s_schema = OuterSchema();
  Rng rng(config.data_seed);
  const std::vector<storage::Tuple> r_tuples = MakeTuples(
      r_schema, config.inner_tuples, config.key_domain, config.zipf_theta, rng);
  const std::vector<storage::Tuple> s_tuples = MakeTuples(
      s_schema, config.outer_tuples, config.key_domain, config.zipf_theta, rng);

  GAMMA_ASSIGN_OR_RETURN(db::StoredRelation * inner,
                         catalog.Create(machine, "R", r_schema));
  GAMMA_ASSIGN_OR_RETURN(db::StoredRelation * outer,
                         catalog.Create(machine, "S", s_schema));
  GAMMA_RETURN_IF_ERROR(LoadFuzzRelation(inner, r_tuples, config.hpja));
  GAMMA_RETURN_IF_ERROR(LoadFuzzRelation(outer, s_tuples, config.hpja));

  const join::JoinSpec spec =
      BuildSpec(config, machine, inner->total_bytes(), r_schema.tuple_bytes(),
                MaxKeyMultiplicity(r_tuples, r_schema));

  FuzzRunResult result;
  GAMMA_ASSIGN_OR_RETURN(result.oracle, OracleJoinDigest(catalog, spec));

  if (config.fault_seed != 0) {
    sim::FaultPlan::RandomOptions fo;
    fo.num_nodes = machine.num_nodes();
    machine.ArmFaults(sim::FaultPlan::Random(config.fault_seed, fo));
  }

  GAMMA_ASSIGN_OR_RETURN(join::JoinOutput out,
                         join::ExecuteJoin(machine, catalog, spec));
  if (!out.result_digest.has_value()) {
    return Status::Internal("capture_results produced no digest");
  }
  result.engine = *out.result_digest;

  GAMMA_ASSIGN_OR_RETURN(db::StoredRelation * stored,
                         catalog.Get(out.result_relation));
  result.stored = DigestStoredResult(*stored, r_schema, spec.inner_field);

  if (InjectedMismatch(config)) result.engine.xor_mix ^= 1;
  return result;
}

FuzzConfig RandomConfig(uint64_t seed) {
  Rng rng(seed);
  FuzzConfig c;
  c.data_seed = 1 + rng.Uniform(1u << 30);
  c.algorithm = static_cast<join::Algorithm>(rng.Uniform(4));
  c.threads = PickFrom(rng, {1, 4, 8});
  c.inner_tuples = PickFrom<uint32_t>(rng, {0, 1, 2, 3, 5, 8, 16, 40, 100,
                                            250, 600});
  c.outer_tuples = PickFrom<uint32_t>(rng, {0, 1, 2, 4, 8, 20, 60, 150, 400,
                                            1000, 1500});
  c.key_domain = PickFrom<uint32_t>(rng, {1, 2, 3, 5, 10, 25, 100, 500});
  c.zipf_theta = PickFrom(rng, {0.0, 0.0, 0.5, 1.0, 1.5});
  c.sel_pct = PickFrom(rng, {100, 100, 80, 50, 20, 5});
  c.memory_pct = PickFrom(rng, {100, 100, 60, 35, 15, 5});
  c.zero_slack = rng.Uniform(4) == 0;
  c.hpja = rng.Uniform(2) == 0;
  c.remote = rng.Uniform(4) == 0;
  c.bit_filters = rng.Uniform(5) < 2;
  c.forming_bit_filters = c.bit_filters && rng.Uniform(2) == 0;
  c.adaptive_repartition = rng.Uniform(10) < 3;
  c.fault_seed = rng.Uniform(10) < 3 ? 1 + rng.Uniform(1000000) : 0;
  c.max_levels = PickFrom(rng, {16, 16, 16, 16, 8, 4, 2, 1, 0});
  return c;
}

FuzzConfig RandomDeepOverflowConfig(uint64_t seed) {
  // Distinct stream from RandomConfig(seed) so the nightly campaigns
  // don't replay each other's plans.
  Rng rng(Mix64(seed ^ 0xDEE9'0E4F'70u));
  FuzzConfig c;
  c.data_seed = 1 + rng.Uniform(1u << 30);
  // Sort-merge never overflows a hash table; keep the three hash joins.
  c.algorithm = static_cast<join::Algorithm>(1 + rng.Uniform(3));
  c.threads = PickFrom(rng, {1, 4, 8});
  // Builds big enough that a starved budget recurses several levels.
  c.inner_tuples = PickFrom<uint32_t>(rng, {16, 40, 100, 250, 600, 1000});
  c.outer_tuples = PickFrom<uint32_t>(rng, {0, 1, 8, 60, 150, 400, 1000});
  // Small, duplicate-heavy domains: the unsplittable-key regime.
  c.key_domain = PickFrom<uint32_t>(rng, {1, 2, 3, 5, 10, 25, 100});
  c.zipf_theta = PickFrom(rng, {0.0, 0.5, 1.0, 1.0, 1.5});
  c.sel_pct = PickFrom(rng, {100, 100, 80, 50});
  // Starved memory is the whole point of the campaign.
  c.memory_pct = PickFrom(rng, {5, 5, 5, 10, 15, 35});
  c.zero_slack = rng.Uniform(2) == 0;
  c.hpja = rng.Uniform(2) == 0;
  c.remote = rng.Uniform(4) == 0;
  c.bit_filters = rng.Uniform(5) < 2;
  c.forming_bit_filters = c.bit_filters && rng.Uniform(2) == 0;
  c.adaptive_repartition = rng.Uniform(10) < 3;
  c.fault_seed = rng.Uniform(10) < 2 ? 1 + rng.Uniform(1000000) : 0;
  // Bias toward shallow caps so the nested-loop fallback fires often.
  c.max_levels = PickFrom(rng, {0, 1, 2, 2, 3, 4, 8, 16});
  return c;
}

std::string FuzzConfig::ToReproString() const {
  return StrFormat(
      "algo=%s threads=%d inner=%u outer=%u domain=%u theta=%.3f sel=%d "
      "mem=%d slack0=%d hpja=%d remote=%d bf=%d fbf=%d adapt=%d faults=%llu "
      "maxlvl=%d lfloor=%d data=%llu inject=%d",
      join::AlgorithmName(algorithm), threads, inner_tuples, outer_tuples,
      key_domain, zipf_theta, sel_pct, memory_pct, static_cast<int>(zero_slack),
      static_cast<int>(hpja), static_cast<int>(remote),
      static_cast<int>(bit_filters), static_cast<int>(forming_bit_filters),
      static_cast<int>(adaptive_repartition),
      static_cast<unsigned long long>(fault_seed), max_levels,
      static_cast<int>(legacy_floor),
      static_cast<unsigned long long>(data_seed),
      static_cast<int>(inject_mismatch));
}

Result<FuzzConfig> FuzzConfig::FromReproString(const std::string& line) {
  FuzzConfig config;
  std::istringstream stream(line);
  std::string token;
  bool any_token = false;
  while (stream >> token) {
    any_token = true;
    const size_t eq = token.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("repro token without '=': " + token);
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    int64_t n = 0;
    double d = 0;
    const bool is_int = ParseInt64(value, &n);
    if (key == "algo") {
      bool found = false;
      for (int a = 0; a < 4; ++a) {
        if (value == join::AlgorithmName(static_cast<join::Algorithm>(a))) {
          config.algorithm = static_cast<join::Algorithm>(a);
          found = true;
        }
      }
      if (!found) {
        return Status::InvalidArgument("unknown algorithm: " + value);
      }
      continue;
    }
    if (key == "theta") {
      if (!ParseDouble(value, &d) || d < 0) {
        return Status::InvalidArgument("bad theta: " + value);
      }
      config.zipf_theta = d;
      continue;
    }
    if (!is_int || n < 0) {
      return Status::InvalidArgument("bad repro value: " + token);
    }
    if (key == "threads") {
      config.threads = static_cast<int>(n);
    } else if (key == "inner") {
      config.inner_tuples = static_cast<uint32_t>(n);
    } else if (key == "outer") {
      config.outer_tuples = static_cast<uint32_t>(n);
    } else if (key == "domain") {
      config.key_domain = static_cast<uint32_t>(n);
    } else if (key == "sel") {
      config.sel_pct = static_cast<int>(n);
    } else if (key == "mem") {
      config.memory_pct = static_cast<int>(n);
    } else if (key == "slack0") {
      config.zero_slack = n != 0;
    } else if (key == "hpja") {
      config.hpja = n != 0;
    } else if (key == "remote") {
      config.remote = n != 0;
    } else if (key == "bf") {
      config.bit_filters = n != 0;
    } else if (key == "fbf") {
      config.forming_bit_filters = n != 0;
    } else if (key == "adapt") {
      config.adaptive_repartition = n != 0;
    } else if (key == "faults") {
      config.fault_seed = static_cast<uint64_t>(n);
    } else if (key == "maxlvl") {
      config.max_levels = static_cast<int>(n);
    } else if (key == "lfloor") {
      config.legacy_floor = n != 0;
    } else if (key == "data") {
      config.data_seed = static_cast<uint64_t>(n);
    } else if (key == "inject") {
      config.inject_mismatch = n != 0;
    } else {
      return Status::InvalidArgument("unknown repro key: " + key);
    }
  }
  if (!any_token) {
    return Status::InvalidArgument("empty repro line");
  }
  if (config.threads < 1 || config.key_domain < 1) {
    return Status::InvalidArgument("repro config out of range");
  }
  return config;
}

namespace {

/// "Does this candidate still fail?" — the shrinker's only question.
/// Infrastructure errors count as not-failing so shrinking never walks
/// into an invalid region.
bool StillFails(const FuzzConfig& config, int* runs) {
  ++*runs;
  const Result<FuzzRunResult> run = RunFuzzConfig(config);
  return run.ok() && !run->ok();
}

/// Ladder of sizes/domains: dense at the bottom so exact thresholds
/// (one tuple, one bucket's worth, one page's worth) land precisely.
const uint32_t kSizeLadder[] = {0,  1,  2,  3,   4,   6,   8,   12,  16,  24,
                                32, 48, 64, 96,  128, 192, 256, 384, 512, 768,
                                1024, 1536};

/// Tries each candidate in order (simplest first), accepting the first
/// that still fails. Returns true on accept.
template <typename T, typename Apply>
bool TryCandidates(FuzzConfig* best, const std::vector<T>& candidates,
                   const Apply& apply, int* runs) {
  for (const T& candidate : candidates) {
    FuzzConfig trial = *best;
    apply(&trial, candidate);
    if (StillFails(trial, runs)) {
      *best = trial;
      return true;
    }
  }
  return false;
}

/// Ladder entries strictly below `current` (numeric axes, where smaller
/// is simpler).
std::vector<uint32_t> Below(const uint32_t* begin, const uint32_t* end,
                            uint32_t current) {
  std::vector<uint32_t> out;
  for (const uint32_t* v = begin; v != end && *v < current; ++v) {
    out.push_back(*v);
  }
  return out;
}

/// Ladder entries before `current`'s position (preference-ordered axes;
/// a current value not on the ladder yields the whole ladder, which the
/// fixpoint loop then pins to an on-ladder value).
template <typename T>
std::vector<T> Before(const std::vector<T>& ladder, T current) {
  std::vector<T> out;
  for (const T& v : ladder) {
    if (v == current) break;
    out.push_back(v);
  }
  return out;
}

}  // namespace

ShrinkResult ShrinkFailure(const FuzzConfig& failing) {
  ShrinkResult result;
  result.config = failing;
  if (!StillFails(failing, &result.runs)) return result;
  result.reproduced = true;

  const uint32_t* sizes_begin = std::begin(kSizeLadder);
  const uint32_t* sizes_end = std::end(kSizeLadder);
  const std::vector<double> thetas = {0.0, 0.5, 1.0, 1.5};
  const std::vector<int> pcts = {100, 60, 35, 15, 5};
  const std::vector<int> sels = {100, 80, 50, 20, 5};
  const std::vector<int> threads = {1, 4, 8};
  const std::vector<int> algos = {0, 1, 2, 3};
  // Preference order, not numeric: a generous depth budget (16, no
  // fallback pressure) is the "simplest" end; 0 (immediate fallback) is
  // the most aggressive.
  const std::vector<int> levels = {16, 8, 4, 2, 1, 0};

  FuzzConfig* best = &result.config;
  int* runs = &result.runs;
  const auto try_off = [&](bool current, auto&& apply) {
    if (!current) return false;
    return TryCandidates<int>(best, {0}, apply, runs);
  };
  bool progress = true;
  while (progress) {
    progress = false;
    progress |= TryCandidates<uint32_t>(
        best, Below(sizes_begin, sizes_end, best->inner_tuples),
        [](FuzzConfig* c, uint32_t v) { c->inner_tuples = v; }, runs);
    progress |= TryCandidates<uint32_t>(
        best, Below(sizes_begin + 1, sizes_end, best->key_domain),
        [](FuzzConfig* c, uint32_t v) { c->key_domain = v; }, runs);
    progress |= TryCandidates<uint32_t>(
        best, Below(sizes_begin, sizes_end, best->outer_tuples),
        [](FuzzConfig* c, uint32_t v) { c->outer_tuples = v; }, runs);
    progress |= TryCandidates<double>(
        best, Before(thetas, best->zipf_theta),
        [](FuzzConfig* c, double v) { c->zipf_theta = v; }, runs);
    progress |= TryCandidates<int>(
        best, Before(sels, best->sel_pct),
        [](FuzzConfig* c, int v) { c->sel_pct = v; }, runs);
    progress |= TryCandidates<int>(
        best, Before(pcts, best->memory_pct),
        [](FuzzConfig* c, int v) { c->memory_pct = v; }, runs);
    progress |= TryCandidates<int>(
        best, Before(threads, best->threads),
        [](FuzzConfig* c, int v) { c->threads = v; }, runs);
    progress |= TryCandidates<int>(
        best, Before(algos, static_cast<int>(best->algorithm)),
        [](FuzzConfig* c, int v) {
          c->algorithm = static_cast<join::Algorithm>(v);
        },
        runs);
    progress |= TryCandidates<int>(
        best, Before(levels, best->max_levels),
        [](FuzzConfig* c, int v) { c->max_levels = v; }, runs);
    progress |= try_off(best->legacy_floor,
                        [](FuzzConfig* c, int) { c->legacy_floor = false; });
    progress |= try_off(best->zero_slack,
                        [](FuzzConfig* c, int) { c->zero_slack = false; });
    progress |=
        try_off(best->hpja, [](FuzzConfig* c, int) { c->hpja = false; });
    progress |=
        try_off(best->remote, [](FuzzConfig* c, int) { c->remote = false; });
    progress |= try_off(best->forming_bit_filters, [](FuzzConfig* c, int) {
      c->forming_bit_filters = false;
    });
    progress |= try_off(best->bit_filters,
                        [](FuzzConfig* c, int) { c->bit_filters = false; });
    progress |= try_off(best->adaptive_repartition, [](FuzzConfig* c, int) {
      c->adaptive_repartition = false;
    });
    progress |= try_off(best->fault_seed != 0,
                        [](FuzzConfig* c, int) { c->fault_seed = 0; });
  }
  return result;
}

}  // namespace gammadb::testing
