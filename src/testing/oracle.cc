#include "testing/oracle.h"

#include <vector>

#include "gamma/predicate.h"
#include "storage/tuple.h"

namespace gammadb::testing {

Result<join::ResultDigest> OracleJoinDigest(const db::Catalog& catalog,
                                            const join::JoinSpec& spec) {
  GAMMA_ASSIGN_OR_RETURN(db::StoredRelation * inner,
                         catalog.Get(spec.inner_relation));
  GAMMA_ASSIGN_OR_RETURN(db::StoredRelation * outer,
                         catalog.Get(spec.outer_relation));
  const storage::Schema& r_schema = inner->schema();
  const storage::Schema& s_schema = outer->schema();
  const std::vector<storage::Tuple> r = inner->PeekAllTuples();
  const std::vector<storage::Tuple> s = outer->PeekAllTuples();

  join::DigestAccumulator acc;
  for (const storage::Tuple& rt : r) {
    if (!db::EvalAll(spec.inner_predicate, r_schema, rt)) continue;
    const int32_t key =
        rt.GetInt32(r_schema, static_cast<size_t>(spec.inner_field));
    for (const storage::Tuple& st : s) {
      if (st.GetInt32(s_schema, static_cast<size_t>(spec.outer_field)) != key) {
        continue;
      }
      if (!db::EvalAll(spec.outer_predicate, s_schema, st)) continue;
      acc.AddPair(key, rt.data(), rt.size(), st.data(), st.size());
    }
  }
  return acc.digest();
}

join::ResultDigest DigestStoredResult(const db::StoredRelation& result,
                                      const storage::Schema& inner_schema,
                                      int inner_field) {
  join::DigestAccumulator acc;
  for (const storage::Tuple& t : result.PeekAllTuples()) {
    acc.AddConcatRecord(inner_schema, inner_field, t.data(), t.size());
  }
  return acc.digest();
}

}  // namespace gammadb::testing
