// Differential correctness oracle (docs/testing.md): a deliberately
// dumb, single-process nested-loop reference join over the same stored
// relations a JoinSpec names, producing the canonical multiset digest
// of join/digest.h. It shares NOTHING with the machinery under test —
// no sim/ phases, no exchanges, no split tables, no hash tables, no
// rebalancing — so any digest disagreement with join::ExecuteJoin
// localizes the bug to the parallel engines.
#ifndef GAMMA_TESTING_ORACLE_H_
#define GAMMA_TESTING_ORACLE_H_

#include "common/status.h"
#include "gamma/catalog.h"
#include "join/digest.h"
#include "join/spec.h"

namespace gammadb::testing {

/// Digest of the reference join of spec.inner_relation x
/// spec.outer_relation on (inner_field, outer_field), after applying
/// spec.inner_predicate / spec.outer_predicate. Reads tuples with the
/// uncharged PeekAllTuples path, so running the oracle perturbs no
/// simulated metric. O(|R| * |S|) by design: the oracle optimizes for
/// obviousness, not speed.
Result<join::ResultDigest> OracleJoinDigest(const db::Catalog& catalog,
                                            const join::JoinSpec& spec);

/// Digest recomputed from a STORED result relation (the engines'
/// Concat(inner, outer) record layout). Lets tests check all three
/// legs: oracle == streamed capture == what actually landed on disk.
join::ResultDigest DigestStoredResult(const db::StoredRelation& result,
                                      const storage::Schema& inner_schema,
                                      int inner_field);

}  // namespace gammadb::testing

#endif  // GAMMA_TESTING_ORACLE_H_
