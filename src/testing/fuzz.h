// Randomized differential join fuzzing (docs/testing.md): seeded plan
// generation over every axis the four algorithms branch on, execution
// against a fresh simulated machine, digest comparison against the
// nested-loop oracle, and greedy shrinking of failures to a minimal
// ready-to-paste repro line. Library form so both tools/join_fuzz and
// the unit tests drive identical code.
#ifndef GAMMA_TESTING_FUZZ_H_
#define GAMMA_TESTING_FUZZ_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "join/digest.h"
#include "join/spec.h"

namespace gammadb::testing {

/// One fully-specified fuzz plan. Every field is an independent shrink
/// axis; defaults are the "minimal" end of each axis. The simulated
/// machine always has 4 disk nodes (plus 4 diskless ones when `remote`).
struct FuzzConfig {
  /// Seed for tuple/key synthesis (not shrunk: it is the data identity).
  uint64_t data_seed = 1;
  join::Algorithm algorithm = join::Algorithm::kSortMerge;
  /// Executor threads: 1, 4 or 8 (the determinism-contract matrix).
  int threads = 1;
  uint32_t inner_tuples = 0;
  uint32_t outer_tuples = 0;
  /// Join keys are drawn from [0, key_domain); a small domain forces
  /// duplicate-key multiplicity, domain 1 makes every key collide.
  uint32_t key_domain = 1;
  /// Zipf skew of the key draw (0 = uniform; key 0 hottest).
  double zipf_theta = 0.0;
  /// Both scan predicates keep ~sel_pct% of tuples (100 = no predicate).
  int sel_pct = 100;
  /// Join memory as a percentage of the inner relation's bytes, floored
  /// at the driver's validity minimum. 100 = no overflow anywhere;
  /// small values push Simple hash into deep overflow recursion.
  int memory_pct = 100;
  /// Drop JoinSpec::memory_slack to 0 (overflow-onset region).
  bool zero_slack = false;
  /// Hash-decluster both relations on the join attribute with the join
  /// seed (the paper's HPJA configurations); otherwise round-robin.
  bool hpja = false;
  /// Join at 4 diskless processors. Ignored for sort-merge, which the
  /// driver pins to the disk nodes (paper Section 3.1).
  bool remote = false;
  bool bit_filters = false;
  /// Applied only when bit_filters is also set (spec.h contract).
  bool forming_bit_filters = false;
  bool adaptive_repartition = false;
  /// 0 = fault-free; otherwise seeds sim::FaultPlan::Random, exercising
  /// transient I/O errors, packet loss/duplication and crash-restart.
  uint64_t fault_seed = 0;
  /// JoinSpec::max_overflow_levels: recursion depth budget before the
  /// nested-loop fallback engages (docs/overflow.md). Small values (and
  /// 0) deliberately force the fallback.
  int max_levels = 16;
  /// Campaign compatibility flag (tools/join_fuzz --legacy-floor): floor
  /// the memory budget at join_procs x tuple_bytes x max duplicate
  /// multiplicity, as the generator did before the engine could degrade
  /// to the nested-loop fallback. Off = only the driver's validity floor
  /// (one tuple per join process), which lets generated plans push a
  /// whole duplicate group past the aggregate budget.
  bool legacy_floor = false;
  /// Test hook for the shrinker itself: pretends the engine digest is
  /// wrong whenever bit_filters && inner_tuples >= 2 &&
  /// outer_tuples >= 32, so tests can assert the shrinker converges to
  /// exactly that boundary. Never set by RandomConfig; not a shrink
  /// axis.
  bool inject_mismatch = false;

  /// One-line "key=value ..." form, accepted back by FromReproString
  /// and by tools/join_fuzz --repro.
  std::string ToReproString() const;
  static Result<FuzzConfig> FromReproString(const std::string& line);
};

/// Deterministic config synthesis: same seed, same plan.
FuzzConfig RandomConfig(uint64_t seed);

/// Deterministic config synthesis biased into the deep-overflow regime
/// (tools/join_fuzz --deep-overflow): tiny memory budgets, small skewed
/// key domains, zero slack most of the time, and a recursion-depth axis
/// weighted toward values that force the nested-loop fallback.
FuzzConfig RandomDeepOverflowConfig(uint64_t seed);

struct FuzzRunResult {
  join::ResultDigest oracle;
  /// Digest streamed out of the engines via JoinSpec::capture_results.
  join::ResultDigest engine;
  /// Digest recomputed from the stored result relation on disk.
  join::ResultDigest stored;
  bool ok() const { return oracle == engine && oracle == stored; }
};

/// Runs one config end to end on a fresh machine + catalog. Non-OK only
/// on infrastructure failure (the generator emits valid plans); a digest
/// mismatch is reported through FuzzRunResult::ok().
Result<FuzzRunResult> RunFuzzConfig(const FuzzConfig& config);

struct ShrinkResult {
  FuzzConfig config;
  /// Whether the input config failed at all (false = nothing to shrink;
  /// `config` is returned unchanged).
  bool reproduced = false;
  /// Total RunFuzzConfig executions spent shrinking.
  int runs = 0;
};

/// Greedy per-axis minimization: repeatedly tries the smallest ladder
/// value of every axis, accepting any candidate that still fails, until
/// a full pass accepts nothing. Candidates that error out are treated
/// as non-reproducing. The result is locally minimal: shrinking any
/// single axis further makes the failure disappear.
ShrinkResult ShrinkFailure(const FuzzConfig& failing);

}  // namespace gammadb::testing

#endif  // GAMMA_TESTING_FUZZ_H_
